package obs

import (
	"math"
	"strings"
	"testing"
)

// twoRankIter builds one synthetic iteration window [0, 1000] on two ranks:
// rank 1 computes the whole window while rank 0 computes 0–200 then blocks in
// a collective recv on rank 1 for 200–1000. Rank 1 bounds the iteration, and
// the walk should charge all 1000ns to rank 1's compute.
func twoRankIter(iter int, base int64) []TraceBundle {
	return []TraceBundle{
		{Rank: 0, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 0, Track: TrackEngine, Peer: NoPeer, Iter: iter, StartNS: base, DurNS: 990},
			{ID: 2, Parent: 1, Name: "recv", Cat: CatRecv, Rank: 0, Track: TrackEngine, Peer: 1, Iter: iter, StartNS: base + 200, DurNS: 790},
		}},
		{Rank: 1, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 1, Track: TrackEngine, Peer: NoPeer, Iter: iter, StartNS: base, DurNS: 1000},
		}},
	}
}

// TestCritPathSlowRankCompute: a straggler's compute must be named as the
// bound, with the waiting rank charged nothing.
func TestCritPathSlowRankCompute(t *testing.T) {
	rep := AnalyzeCriticalPath(twoRankIter(0, 0))
	if rep.Ranks != 2 || len(rep.Iters) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.Iters[0].BoundingRank != 1 || rep.Iters[0].DurNS != 1000 {
		t.Fatalf("iter window: %+v", rep.Iters[0])
	}
	if rep.TotalNS != 1000 {
		t.Fatalf("TotalNS = %d, want 1000", rep.TotalNS)
	}
	if got := rep.Attr[1].ComputeNS; got != 1000 {
		t.Errorf("rank 1 compute = %d, want 1000", got)
	}
	if got := rep.Attr[0].TotalNS; got != 0 {
		t.Errorf("rank 0 charged %d, want 0 (it was waiting on the straggler)", got)
	}
	if rep.Verdict != 1 || rep.VerdictFrac != 1.0 {
		t.Errorf("verdict = rank %d frac %.2f, want rank 1 frac 1.00", rep.Verdict, rep.VerdictFrac)
	}
	if !strings.Contains(rep.String(), "verdict: rank 1 bounds 100.0%") {
		t.Errorf("report missing stable verdict line:\n%s", rep.String())
	}
}

// TestCritPathPeerImposedSegment: the bounding rank waits on a peer whose
// compute segment is charged as peer-imposed, then computes itself — the
// window must split between the two buckets exactly.
func TestCritPathPeerImposedSegment(t *testing.T) {
	// Window [0,1000]. Rank 0 bounds. Rank 0: recv on rank 1 covering
	// [0,600], then computes 600–1000. Rank 1 has no waits (computing
	// throughout): its segment under the recv is imposed on the path.
	bundles := []TraceBundle{
		{Rank: 0, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 0, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 0, DurNS: 1000},
			{ID: 2, Parent: 1, Name: "recv", Cat: CatRecv, Rank: 0, Track: TrackEngine, Peer: 1, Iter: 0, StartNS: 0, DurNS: 600},
		}},
		{Rank: 1, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 1, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 0, DurNS: 500},
		}},
	}
	rep := AnalyzeCriticalPath(bundles)
	if rep.Iters[0].BoundingRank != 0 {
		t.Fatalf("bounding rank = %d, want 0", rep.Iters[0].BoundingRank)
	}
	if got := rep.Attr[0].ComputeNS; got != 400 {
		t.Errorf("rank 0 compute = %d, want 400", got)
	}
	if got := rep.Attr[1].PeerImposedNS; got != 600 {
		t.Errorf("rank 1 imposed = %d, want 600", got)
	}
	if sum := rep.Attr[0].TotalNS + rep.Attr[1].TotalNS; sum != rep.TotalNS {
		t.Errorf("attribution does not cover the window: %d of %d ns", sum, rep.TotalNS)
	}
}

// TestCritPathDKVService: time blocked on a DKV response is charged to the
// SERVING rank's dkv bucket — the attribution the server-side spans exist for.
func TestCritPathDKVService(t *testing.T) {
	bundles := []TraceBundle{
		{Rank: 0, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 0, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 0, DurNS: 1000},
			// Blocked on rank 1's DKV server for 300–900.
			{ID: 2, Parent: 1, Name: "dkv.wait.read", Cat: CatDKVWait, Rank: 0, Track: TrackDKVClient, Peer: 1, Iter: 0, Tag: 7, StartNS: 300, DurNS: 600},
		}},
		{Rank: 1, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 1, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 0, DurNS: 400},
			// The matching server-side request: queue/handle/reply children.
			{ID: 10, Name: "dkv.serve.read", Cat: CatDKVServe, Rank: 1, Track: TrackDKVServer, Peer: 0, Iter: -1, Tag: 7, StartNS: 310, DurNS: 580},
			{ID: 11, Parent: 10, Name: "queue", Cat: CatDKVServe, Rank: 1, Track: TrackDKVServer, Peer: 0, Iter: -1, Tag: 7, StartNS: 310, DurNS: 100},
			{ID: 12, Parent: 10, Name: "handle", Cat: CatDKVServe, Rank: 1, Track: TrackDKVServer, Peer: 0, Iter: -1, Tag: 7, StartNS: 410, DurNS: 400},
			{ID: 13, Parent: 10, Name: "reply", Cat: CatDKVServe, Rank: 1, Track: TrackDKVServer, Peer: 0, Iter: -1, Tag: 7, StartNS: 810, DurNS: 80},
		}},
	}
	rep := AnalyzeCriticalPath(bundles)
	if got := rep.Attr[1].DKVServiceNS; got != 600 {
		t.Errorf("rank 1 dkv service = %d, want 600", got)
	}
	if got := rep.Attr[0].ComputeNS; got != 400 {
		t.Errorf("rank 0 compute = %d, want 400 (300 before the wait + 100 after)", got)
	}
	if len(rep.DKVServers) != 1 {
		t.Fatalf("DKVServers = %+v, want one entry", rep.DKVServers)
	}
	st := rep.DKVServers[0]
	if st.Rank != 1 || st.Requests != 1 {
		t.Errorf("server stats: %+v", st)
	}
	if st.QueueNS != 100 || st.HandleNS != 400 || st.ReplyNS != 80 {
		t.Errorf("queue/handle/reply = %d/%d/%d, want 100/400/80", st.QueueNS, st.HandleNS, st.ReplyNS)
	}
	if st.ByRequester[0] != 580 {
		t.Errorf("ByRequester[0] = %d, want 580 (the root span duration)", st.ByRequester[0])
	}
}

// TestCritPathHopGuard: mutually covering recv spans (each rank claims to be
// waiting on the other — possible with overlapping collective windows) must
// terminate via the cycle backstop instead of ping-ponging forever.
func TestCritPathHopGuard(t *testing.T) {
	bundles := []TraceBundle{
		{Rank: 0, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 0, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 0, DurNS: 1000},
			{ID: 2, Name: "recv", Cat: CatRecv, Rank: 0, Track: TrackEngine, Peer: 1, Iter: 0, StartNS: 0, DurNS: 1000},
		}},
		{Rank: 1, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 1, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 0, DurNS: 1000},
			{ID: 2, Name: "recv", Cat: CatRecv, Rank: 1, Track: TrackEngine, Peer: 0, Iter: 0, StartNS: 0, DurNS: 1000},
		}},
	}
	rep := AnalyzeCriticalPath(bundles) // must return, not spin
	if sum := rep.Attr[0].TotalNS + rep.Attr[1].TotalNS; sum != rep.TotalNS {
		t.Errorf("cycle case did not cover the window: %d of %d ns", sum, rep.TotalNS)
	}
}

// TestCritPathMultiIterAggregation: attribution accumulates across iteration
// windows and the verdict fraction is the share of the summed path.
func TestCritPathMultiIterAggregation(t *testing.T) {
	var bundles []TraceBundle
	b0 := twoRankIter(0, 0)
	b1 := twoRankIter(1, 5000)
	// Merge per rank: gather order is one bundle per rank.
	for r := 0; r < 2; r++ {
		bundles = append(bundles, TraceBundle{
			Rank:  r,
			Spans: append(append([]Span(nil), b0[r].Spans...), b1[r].Spans...),
		})
	}
	rep := AnalyzeCriticalPath(bundles)
	if len(rep.Iters) != 2 || rep.TotalNS != 2000 {
		t.Fatalf("iters=%d total=%d, want 2 iters / 2000 ns", len(rep.Iters), rep.TotalNS)
	}
	if rep.Attr[1].ComputeNS != 2000 {
		t.Errorf("rank 1 compute = %d, want 2000", rep.Attr[1].ComputeNS)
	}
	if math.Abs(rep.VerdictFrac-1.0) > 1e-9 || rep.Verdict != 1 {
		t.Errorf("verdict rank %d frac %.3f, want rank 1 frac 1.0", rep.Verdict, rep.VerdictFrac)
	}
}

// TestCritPathEmptyAndDrops: no spans → a "no iteration spans" verdict; drop
// counts surface as warnings.
func TestCritPathEmptyAndDrops(t *testing.T) {
	rep := AnalyzeCriticalPath(nil)
	if rep.Verdict != -1 || !strings.Contains(rep.String(), "no iteration spans") {
		t.Errorf("empty report: %q", rep.String())
	}
	rep = AnalyzeCriticalPath([]TraceBundle{{Rank: 0, Dropped: 42}})
	if rep.DroppedBy[0] != 42 || !strings.Contains(rep.String(), "rank 0 dropped 42 spans") {
		t.Errorf("drop warning missing: %q", rep.String())
	}
}
