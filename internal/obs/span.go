package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: the causal-timeline layer of the telemetry stack. Where the
// Recorder aggregates (per-stage totals, counter deltas), the Tracer records
// individual intervals — every engine stage, every collective, every DKV
// round trip — with parent ids so the timeline nests, and with the peer rank
// on anything that crossed the wire so waits are attributable. Spans are
// buffered per rank with a hard bound (tracing must never grow without
// limit), gathered at run end over the ordinary collectives, and exported as
// Chrome trace-event JSON for Perfetto / chrome://tracing.
//
// The clock is a process-wide monotonic epoch: every rank of a run lives in
// this process (the in-proc fabric and the TCP loopback mesh alike), so span
// timestamps are directly comparable across ranks without clock-sync
// machinery. A future multi-process transport would need to exchange epoch
// offsets at connect time; the bundle format already carries the rank, so
// only the clock needs revisiting.
//
// Like the Recorder, the Tracer is nil-gated: every hook site pays one
// nil-check when tracing is off, and the trained trajectory is bit-identical
// with tracing on or off (spans only observe, never synchronize).

// Span categories. The critical-path analyzer keys off these.
const (
	CatIter       = "iter"       // one per iteration per rank, parents the stages
	CatStage      = "stage"      // engine stage (Table III phase names)
	CatCollective = "collective" // cluster.Comm Barrier/Bcast/Gather/Scatter
	CatRecv       = "recv"       // one blocking receive inside a collective, Peer = sender
	CatDKVWait    = "dkv_wait"   // client blocked on a DKV response, Peer = serving rank
	CatDKVServe   = "dkv_serve"  // server-side request handling, Peer = REQUESTING rank
)

// Track ids: the Chrome trace "tid" each span renders under. Spans on one
// track must nest by time (Perfetto draws same-tid overlaps as nesting), so
// concurrent subsystems get their own lane.
const (
	TrackEngine    = 0 // engine loop: iter > stage > collective > recv
	TrackDKVClient = 1 // DKV futures (the pipelined loader goroutine)
	TrackDKVServer = 2 // DKV server request loop
)

// NoPeer marks a span with no wire peer (stages, iterations).
const NoPeer = -1

// Canonical obs.* counter names for silent telemetry loss: every drop a
// bounded buffer takes is counted, so /metrics and the analyzers can report
// that the timeline or event stream is incomplete.
const (
	CtrSpansDropped  = "obs.spans_dropped"  // Tracer buffer full
	CtrEventsDropped = "obs.events_dropped" // Stream subscriber queue full
)

// traceEpoch anchors every Tracer's clock: TraceNow is monotonic nanoseconds
// since process start, identical across ranks because they share the process.
var traceEpoch = time.Now()

// TraceNow returns the current trace timestamp (monotonic ns since the
// process-wide epoch). Usable without a Tracer — the DKV client stamps its
// request headers with it unconditionally so servers can compute queue wait.
func TraceNow() int64 { return int64(time.Since(traceEpoch)) }

// SpanID identifies a span within one rank's tracer; 0 means "no span"
// (a root's Parent, or an unset scope).
type SpanID uint64

// Span is one closed interval on a rank's timeline.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	Rank   int    `json:"rank"`
	Track  int    `json:"track"`
	// Peer is the other rank of a wire interval: the sender for recv spans,
	// the serving rank for dkv_wait, the REQUESTING rank for dkv_serve (that
	// inversion is the point — server-side time is attributed to whoever
	// asked). NoPeer for purely local spans.
	Peer int `json:"peer"`
	// Iter is the iteration the span belongs to; -1 when unknown (the DKV
	// server loop serves requests without iteration context).
	Iter int `json:"iter"`
	// Tag is the collective tag or DKV request id, for cross-rank
	// correlation of the two ends of one exchange.
	Tag     uint32 `json:"tag,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// End returns the span's end timestamp.
func (s Span) End() int64 { return s.StartNS + s.DurNS }

// DefaultTraceCapacity bounds a Tracer's span buffer. 2^17 spans × ~112
// bytes ≈ 14 MB per rank worst case; a long run overflows the bound and
// counts drops rather than growing.
const DefaultTraceCapacity = 1 << 17

// Tracer is one rank's span recorder. Emit is safe for concurrent use (the
// engine goroutine, the pipelined loader, and the DKV server goroutine all
// emit); the scope and iteration registers are atomics so the concurrent
// emitters can parent themselves under the engine's current stage without
// locking.
type Tracer struct {
	rank int
	cap  int

	nextID  atomic.Uint64
	scope   atomic.Uint64 // current parent SpanID for new child spans
	iter    atomic.Int64  // current iteration, -1 before the first
	dropped atomic.Int64

	dropCtr atomic.Pointer[Counter] // optional registry counter mirroring drops

	mu    sync.Mutex
	spans []Span
}

// NewTracer creates a tracer for one rank buffering at most capacity spans
// (<= 0 uses DefaultTraceCapacity).
func NewTracer(rank, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{rank: rank, cap: capacity}
	t.iter.Store(-1)
	return t
}

// Rank returns the rank this tracer records for.
func (t *Tracer) Rank() int { return t.rank }

// Now returns the current trace timestamp.
func (t *Tracer) Now() int64 { return TraceNow() }

// NewID allocates the next span id (ids start at 1; 0 is "no span").
func (t *Tracer) NewID() SpanID { return SpanID(t.nextID.Add(1)) }

// SetScope makes id the parent for subsequently emitted child spans and
// returns the previous scope, so callers restore it when their span closes.
func (t *Tracer) SetScope(id SpanID) SpanID { return SpanID(t.scope.Swap(uint64(id))) }

// Scope returns the current parent span id (0 when outside any span).
func (t *Tracer) Scope() SpanID { return SpanID(t.scope.Load()) }

// SetIter labels subsequently emitted spans with the running iteration.
func (t *Tracer) SetIter(i int) { t.iter.Store(int64(i)) }

// Iter returns the current iteration label (-1 before the first).
func (t *Tracer) Iter() int { return int(t.iter.Load()) }

// SetDropCounter mirrors the drop count into a registry counter
// (canonically CtrSpansDropped), so /metrics surfaces silent span loss.
func (t *Tracer) SetDropCounter(c *Counter) {
	if c != nil {
		t.dropCtr.Store(c)
	}
}

// Emit records a closed span, stamping this tracer's rank. When the buffer
// is full the span is dropped and counted — tracing degrades, never grows.
func (t *Tracer) Emit(sp Span) {
	sp.Rank = t.rank
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.mu.Unlock()
		t.dropped.Add(1)
		if c := t.dropCtr.Load(); c != nil {
			c.Inc()
		}
		return
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the bound discarded.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Bundle snapshots the tracer into the gatherable form: a copy, so the
// tracer may keep recording (the monitor's live /trace route snapshots
// mid-run).
func (t *Tracer) Bundle() TraceBundle {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	return TraceBundle{Rank: t.rank, Dropped: t.Dropped(), Spans: spans}
}

// TraceBundle is one rank's complete span buffer plus its drop count — the
// unit gathered across ranks at run end (Comm.AllGather of the encoded form)
// and the input to the Chrome exporter and the critical-path analyzer.
type TraceBundle struct {
	Rank    int    `json:"rank"`
	Dropped int64  `json:"dropped"`
	Spans   []Span `json:"spans"`
}

// Encode serialises the bundle for the cross-rank gather.
func (b TraceBundle) Encode() []byte {
	buf, err := json.Marshal(b)
	if err != nil {
		// Span has no unmarshalable fields; this cannot fail.
		panic(fmt.Sprintf("obs: encoding trace bundle: %v", err))
	}
	return buf
}

// DecodeTraceBundle parses a gathered bundle.
func DecodeTraceBundle(buf []byte) (TraceBundle, error) {
	var b TraceBundle
	if err := json.Unmarshal(buf, &b); err != nil {
		return TraceBundle{}, fmt.Errorf("obs: decoding trace bundle: %w", err)
	}
	return b, nil
}
