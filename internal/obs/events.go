package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event types of the JSONL stream.
const (
	EventRunStart   = "run_start"  // once, from rank 0, before iteration 0
	EventIter       = "iter"       // one per iteration per rank
	EventPerplexity = "perplexity" // one per evaluation point, from rank 0
	EventRunEnd     = "run_end"    // once, from rank 0, after the last iteration
)

// Canonical counter names. Subsystems register these into the run's
// Registry; the recorder folds the dkv.* and store.* groups into each iter
// event's DKV block as per-iteration deltas.
const (
	CtrDKVLocalKeys    = "dkv.local_keys"
	CtrDKVRemoteKeys   = "dkv.remote_keys"
	CtrDKVRequests     = "dkv.requests"
	CtrDKVBytesRead    = "dkv.bytes_read"
	CtrDKVBytesWritten = "dkv.bytes_written"

	CtrCacheHits          = "store.cache_hits"
	CtrCacheMisses        = "store.cache_misses"
	CtrCacheEvictions     = "store.cache_evictions"
	CtrCacheInvalidations = "store.cache_invalidations"

	CtrNetMsgsSent  = "transport.msgs_sent"
	CtrNetBytesSent = "transport.bytes_sent"
	CtrNetMsgsRecv  = "transport.msgs_recv"
	CtrNetBytesRecv = "transport.bytes_recv"
)

// Canonical gauge names the recorder maintains for the live monitor.
const (
	GaugeIteration  = "run.iteration"
	GaugePerplexity = "run.perplexity"
	GaugeElapsedMS  = "run.elapsed_ms"
)

// DKVCounters is the parameter-store traffic block of an event: counter
// deltas for that iteration on iter events, cumulative totals on run_end.
type DKVCounters struct {
	LocalKeys    int64 `json:"local_keys"`
	RemoteKeys   int64 `json:"remote_keys"`
	Requests     int64 `json:"requests"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	CacheMisses  int64 `json:"cache_misses,omitempty"`
	// CacheEvictions counts rows displaced by the cache bound;
	// CacheInvalidations counts rows dropped because their key was written
	// (or, per-phase mode, blanket-flushed at a barrier).
	CacheEvictions     int64 `json:"cache_evictions,omitempty"`
	CacheInvalidations int64 `json:"cache_invalidations,omitempty"`
}

// dkvFromCounters assembles a DKVCounters block from counter values (a
// registry snapshot or a delta map).
func dkvFromCounters(c map[string]int64) DKVCounters {
	return DKVCounters{
		LocalKeys:          c[CtrDKVLocalKeys],
		RemoteKeys:         c[CtrDKVRemoteKeys],
		Requests:           c[CtrDKVRequests],
		BytesRead:          c[CtrDKVBytesRead],
		BytesWritten:       c[CtrDKVBytesWritten],
		CacheHits:          c[CtrCacheHits],
		CacheMisses:        c[CtrCacheMisses],
		CacheEvictions:     c[CtrCacheEvictions],
		CacheInvalidations: c[CtrCacheInvalidations],
	}
}

// IsZero reports whether every field is zero (the block is omitted then).
func (d DKVCounters) IsZero() bool { return d == DKVCounters{} }

// Event is one JSONL record of the telemetry stream. Which fields are set
// depends on Type:
//
//   - run_start: Rank, Ranks, Iterations
//   - iter:       Rank, Iter (0-based), StagesMS, DKV (deltas), ElapsedMS
//   - perplexity: Rank, Iter (1-based eval point), Perplexity, ElapsedMS
//   - run_end:    Rank, Iter (= iterations run), DKV (cumulative), ElapsedMS
type Event struct {
	Type       string             `json:"type"`
	Rank       int                `json:"rank"`
	Iter       int                `json:"iter,omitempty"`
	Ranks      int                `json:"ranks,omitempty"`
	Iterations int                `json:"iterations,omitempty"`
	StagesMS   map[string]float64 `json:"stages_ms,omitempty"`
	DKV        *DKVCounters       `json:"dkv,omitempty"`
	Perplexity float64            `json:"perplexity,omitempty"`
	ElapsedMS  float64            `json:"elapsed_ms,omitempty"`
}

// Validate checks the schema invariants a well-formed stream satisfies.
func (e *Event) Validate() error {
	switch e.Type {
	case EventRunStart, EventIter, EventPerplexity, EventRunEnd:
	default:
		return fmt.Errorf("obs: unknown event type %q", e.Type)
	}
	if e.Rank < 0 {
		return fmt.Errorf("obs: %s event with negative rank %d", e.Type, e.Rank)
	}
	if e.Iter < 0 {
		return fmt.Errorf("obs: %s event with negative iter %d", e.Type, e.Iter)
	}
	for name, ms := range e.StagesMS {
		if name == "" {
			return fmt.Errorf("obs: %s event with unnamed stage", e.Type)
		}
		if ms < 0 {
			return fmt.Errorf("obs: %s event: stage %q has negative duration %f", e.Type, name, ms)
		}
	}
	if e.Type == EventPerplexity && e.Perplexity <= 0 {
		return fmt.Errorf("obs: perplexity event at iter %d with non-positive value %f", e.Iter, e.Perplexity)
	}
	if e.ElapsedMS < 0 {
		return fmt.Errorf("obs: %s event with negative elapsed %f", e.Type, e.ElapsedMS)
	}
	return nil
}

// Sink serialises events as JSON lines onto a writer. Emit is safe for
// concurrent use — in a distributed run every rank's recorder shares one
// sink — and each event is exactly one '\n'-terminated line.
type Sink struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer // set by NewFileSink; nil otherwise
}

// NewSink wraps a writer. The caller keeps ownership of w; Close only
// flushes buffered lines.
func NewSink(w io.Writer) *Sink {
	return &Sink{w: bufio.NewWriter(w)}
}

// NewFileSink wraps a writer the sink owns: Close flushes and closes it.
func NewFileSink(w io.WriteCloser) *Sink {
	return &Sink{w: bufio.NewWriter(w), c: w}
}

// Emit writes one event as a single JSON line.
func (s *Sink) Emit(e *Event) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(buf); err != nil {
		return err
	}
	return s.w.WriteByte('\n')
}

// Close flushes buffered lines and closes the underlying writer when the
// sink owns it (NewFileSink).
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadEvents decodes a JSONL stream, validating every event. Blank lines
// are skipped; the first malformed or invalid line fails the read with its
// line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
