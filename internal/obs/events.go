package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event types of the JSONL stream.
const (
	EventRunStart   = "run_start"  // once, from rank 0, before iteration 0
	EventIter       = "iter"       // one per iteration per rank
	EventPerplexity = "perplexity" // one per evaluation point, from rank 0
	EventRebalance  = "rebalance"  // from rank 0, when a window changes the minibatch shares
	EventRunEnd     = "run_end"    // once, from rank 0, after the last iteration
)

// Canonical counter names. Subsystems register these into the run's
// Registry; the recorder folds the dkv.* and store.* groups into each iter
// event's DKV block as per-iteration deltas.
const (
	CtrDKVLocalKeys    = "dkv.local_keys"
	CtrDKVRemoteKeys   = "dkv.remote_keys"
	CtrDKVRequests     = "dkv.requests"
	CtrDKVBytesRead    = "dkv.bytes_read"
	CtrDKVBytesWritten = "dkv.bytes_written"

	CtrCacheHits          = "store.cache_hits"
	CtrCacheMisses        = "store.cache_misses"
	CtrCacheEvictions     = "store.cache_evictions"
	CtrCacheInvalidations = "store.cache_invalidations"

	// Tiered π store traffic: per read, exactly one tier serves each row.
	// hot_misses counts rows that fell past the in-RAM cache; mmap_misses
	// counts rows that also fell past the local mmap tier (i.e. went remote).
	CtrTierHotHits      = "store.tier.hot_hits"
	CtrTierHotMisses    = "store.tier.hot_misses"
	CtrTierMmapHits     = "store.tier.mmap_hits"
	CtrTierMmapMisses   = "store.tier.mmap_misses"
	CtrTierRemoteHits   = "store.tier.remote_hits"
	CtrTierRemoteMisses = "store.tier.remote_misses"

	// Straggler-mitigation counters, maintained at the master by the
	// distributed engine's reshard stage: windows observed, windows that
	// changed the share weights, and total rank-window straggler flags.
	CtrReshardWindows = "engine.reshard.windows"
	CtrReshardChanges = "engine.reshard.changes"
	CtrReshardFlags   = "engine.reshard.flags"

	CtrNetMsgsSent  = "transport.msgs_sent"
	CtrNetBytesSent = "transport.bytes_sent"
	CtrNetMsgsRecv  = "transport.msgs_recv"
	CtrNetBytesRecv = "transport.bytes_recv"
	// CtrNetRecvAnyIdleNS is time parked in RecvAny (the DKV serve loop
	// between requests) — idle, not straggler wait; 1 - idle/elapsed is the
	// serve loop's utilisation.
	CtrNetRecvAnyIdleNS = "transport.recvany_idle_ns"
)

// Canonical gauge names the recorder maintains for the live monitor.
const (
	GaugeIteration  = "run.iteration"
	GaugePerplexity = "run.perplexity"
	GaugeElapsedMS  = "run.elapsed_ms"
)

// DKVCounters is the parameter-store traffic block of an event: counter
// deltas for that iteration on iter events, cumulative totals on run_end.
type DKVCounters struct {
	LocalKeys    int64 `json:"local_keys"`
	RemoteKeys   int64 `json:"remote_keys"`
	Requests     int64 `json:"requests"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	CacheMisses  int64 `json:"cache_misses,omitempty"`
	// CacheEvictions counts rows displaced by the cache bound;
	// CacheInvalidations counts rows dropped because their key was written
	// (or, per-phase mode, blanket-flushed at a barrier).
	CacheEvictions     int64 `json:"cache_evictions,omitempty"`
	CacheInvalidations int64 `json:"cache_invalidations,omitempty"`
}

// dkvFromCounters assembles a DKVCounters block from counter values (a
// registry snapshot or a delta map).
func dkvFromCounters(c map[string]int64) DKVCounters {
	return DKVCounters{
		LocalKeys:          c[CtrDKVLocalKeys],
		RemoteKeys:         c[CtrDKVRemoteKeys],
		Requests:           c[CtrDKVRequests],
		BytesRead:          c[CtrDKVBytesRead],
		BytesWritten:       c[CtrDKVBytesWritten],
		CacheHits:          c[CtrCacheHits],
		CacheMisses:        c[CtrCacheMisses],
		CacheEvictions:     c[CtrCacheEvictions],
		CacheInvalidations: c[CtrCacheInvalidations],
	}
}

// IsZero reports whether every field is zero (the block is omitted then).
func (d DKVCounters) IsZero() bool { return d == DKVCounters{} }

// Event is one JSONL record of the telemetry stream. Which fields are set
// depends on Type:
//
//   - run_start: Rank, Ranks, Iterations
//   - iter:       Rank, Iter (0-based), StagesMS, DKV (deltas), PeerWaitMS
//     (deltas), ElapsedMS
//   - perplexity: Rank, Iter (1-based eval point), Perplexity, ElapsedMS
//   - rebalance:  Rank (= 0), Iter (the iteration whose window closed),
//     Weights (the new share vector), Flagged (ranks the window flagged),
//     PeerWaitMS (the window's imposed-wait vector, keyed by rank)
//   - run_end:    Rank, Iter (= iterations run), DKV (cumulative), ElapsedMS
type Event struct {
	Type       string             `json:"type"`
	Rank       int                `json:"rank"`
	Iter       int                `json:"iter,omitempty"`
	Ranks      int                `json:"ranks,omitempty"`
	Iterations int                `json:"iterations,omitempty"`
	StagesMS   map[string]float64 `json:"stages_ms,omitempty"`
	DKV        *DKVCounters       `json:"dkv,omitempty"`
	// PeerWaitMS, on iter events, is the time this rank spent blocked in
	// targeted receives per sending peer during this iteration (the per-peer
	// recv_wait_ns counter deltas) — the event-stream form of the straggler
	// signal. Keys are peer ranks.
	PeerWaitMS map[int]float64 `json:"peer_wait_ms,omitempty"`
	// Weights and Flagged are set on rebalance events: the minibatch share
	// vector the next window runs with, and the ranks this window's
	// straggler rule flagged.
	Weights    []float64 `json:"weights,omitempty"`
	Flagged    []int     `json:"flagged,omitempty"`
	Perplexity float64   `json:"perplexity,omitempty"`
	ElapsedMS  float64   `json:"elapsed_ms,omitempty"`
}

// Validate checks the schema invariants a well-formed stream satisfies.
func (e *Event) Validate() error {
	switch e.Type {
	case EventRunStart, EventIter, EventPerplexity, EventRebalance, EventRunEnd:
	default:
		return fmt.Errorf("obs: unknown event type %q", e.Type)
	}
	if e.Rank < 0 {
		return fmt.Errorf("obs: %s event with negative rank %d", e.Type, e.Rank)
	}
	if e.Iter < 0 {
		return fmt.Errorf("obs: %s event with negative iter %d", e.Type, e.Iter)
	}
	for name, ms := range e.StagesMS {
		if name == "" {
			return fmt.Errorf("obs: %s event with unnamed stage", e.Type)
		}
		if ms < 0 {
			return fmt.Errorf("obs: %s event: stage %q has negative duration %f", e.Type, name, ms)
		}
	}
	for peer, ms := range e.PeerWaitMS {
		if peer < 0 {
			return fmt.Errorf("obs: %s event with negative peer rank %d", e.Type, peer)
		}
		if ms < 0 {
			return fmt.Errorf("obs: %s event: peer %d has negative wait %f", e.Type, peer, ms)
		}
	}
	for r, w := range e.Weights {
		if w < 0 || w > 1 {
			return fmt.Errorf("obs: %s event: rank %d weight %f outside [0,1]", e.Type, r, w)
		}
	}
	for _, p := range e.Flagged {
		if p < 0 {
			return fmt.Errorf("obs: %s event flags negative rank %d", e.Type, p)
		}
		if len(e.Weights) > 0 && p >= len(e.Weights) {
			return fmt.Errorf("obs: %s event flags rank %d outside the %d-rank weight vector", e.Type, p, len(e.Weights))
		}
	}
	if e.Type == EventRebalance && len(e.Weights) == 0 {
		return fmt.Errorf("obs: rebalance event at iter %d without weights", e.Iter)
	}
	if e.Type == EventPerplexity && e.Perplexity <= 0 {
		return fmt.Errorf("obs: perplexity event at iter %d with non-positive value %f", e.Iter, e.Perplexity)
	}
	if e.ElapsedMS < 0 {
		return fmt.Errorf("obs: %s event with negative elapsed %f", e.Type, e.ElapsedMS)
	}
	return nil
}

// Sink serialises events as JSON lines onto a writer. Emit is safe for
// concurrent use — in a distributed run every rank's recorder shares one
// sink — and each event is exactly one '\n'-terminated line.
type Sink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // set by NewFileSink; nil otherwise
	tee *Stream   // set by Tee; every emitted line is also published here
}

// NewSink wraps a writer. The caller keeps ownership of w; Close only
// flushes buffered lines.
func NewSink(w io.Writer) *Sink {
	return &Sink{w: bufio.NewWriter(w)}
}

// NewFileSink wraps a writer the sink owns: Close flushes and closes it.
func NewFileSink(w io.WriteCloser) *Sink {
	return &Sink{w: bufio.NewWriter(w), c: w}
}

// Tee publishes every subsequently emitted line to st as well — the hookup
// between a run's event sink and the monitor's live /events SSE endpoint,
// which thereby streams exactly the JSONL the file sink receives.
func (s *Sink) Tee(st *Stream) {
	s.mu.Lock()
	s.tee = st
	s.mu.Unlock()
}

// Emit writes one event as a single JSON line.
func (s *Sink) Emit(e *Event) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tee != nil {
		s.tee.Publish(buf)
	}
	if _, err := s.w.Write(buf); err != nil {
		return err
	}
	return s.w.WriteByte('\n')
}

// Close flushes buffered lines and closes the underlying writer when the
// sink owns it (NewFileSink).
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// TornTailError reports that the final line of a stream was cut off
// mid-record — no trailing newline and not decodable — which is the normal
// shape of a crashed run's event file (the sink died mid-write). ReadEvents
// returns it alongside every event before the tear, so callers can degrade
// it to a warning instead of discarding an otherwise-valid stream.
type TornTailError struct {
	Line int   // 1-based line number of the torn record
	Err  error // the decode or validation failure on the partial line
}

// Error implements error.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("obs: line %d: stream ends mid-record (torn tail): %v", e.Line, e.Err)
}

// Unwrap exposes the underlying decode failure.
func (e *TornTailError) Unwrap() error { return e.Err }

// ReadEvents decodes a JSONL stream, validating every event. Blank lines are
// skipped; the first malformed or invalid newline-terminated line fails the
// read with its line number. A final line without a trailing newline that
// fails to decode is a torn tail: the events before it are returned together
// with a *TornTailError (check with errors.As) so consumers can digest a
// crashed run's file with a warning rather than a hard failure.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var events []Event
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		atEOF := err == io.EOF
		terminated := !atEOF
		raw = bytes.TrimSuffix(raw, []byte("\n"))
		if len(raw) > 0 {
			line++
			var e Event
			decodeErr := json.Unmarshal(raw, &e)
			if decodeErr == nil {
				decodeErr = e.Validate()
			}
			switch {
			case decodeErr == nil:
				events = append(events, e)
			case !terminated:
				return events, &TornTailError{Line: line, Err: decodeErr}
			default:
				return nil, fmt.Errorf("obs: line %d: %w", line, decodeErr)
			}
		}
		if atEOF {
			return events, nil
		}
	}
}
