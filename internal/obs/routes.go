package obs

import "net/http"

// Routes is an explicit route table: exact path → handler. It exists
// because net/http's "/" pattern is a catch-all — without a guard, a typo'd
// path or /favicon.ico silently falls through to whatever was registered at
// "/" (the Monitor originally carried this workaround inline; ocd-serve
// reuses it through this helper instead of copy-pasting the trap).
type Routes map[string]http.HandlerFunc

// Mux builds a ServeMux that serves exactly the table's paths and answers
// 404 for everything else, including sub-paths of "/". A "/" entry, when
// present, serves only the literal root path.
func (rt Routes) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	for path, h := range rt {
		if path == "/" {
			continue // folded into the guarded catch-all below
		}
		mux.HandleFunc(path, h)
	}
	root := rt["/"]
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" || root == nil {
			http.NotFound(w, r)
			return
		}
		root(w, r)
	})
	return mux
}
