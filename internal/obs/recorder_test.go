package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestRunRecorderEmitsIterEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)
	reg := NewRegistry()
	rec := NewRunRecorder(sink, 1, reg)

	rec.RunStart(2, 2)
	reg.Counter(CtrDKVRemoteKeys).Add(30)
	rec.StageDone(0, "update_phi", 2*time.Millisecond)
	rec.StageDone(0, "update_phi", time.Millisecond) // chunked stages accumulate
	rec.StageDone(0, "update_pi", time.Millisecond)
	rec.IterDone(0)
	reg.Counter(CtrDKVRemoteKeys).Add(12)
	rec.StageDone(1, "update_phi", time.Millisecond)
	rec.IterDone(1)
	rec.EvalDone(2, 99.5)
	rec.RunEnd(2)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	if events[0].Type != EventRunStart || events[0].Ranks != 2 {
		t.Errorf("run_start = %+v", events[0])
	}
	it0 := events[1]
	if it0.Type != EventIter || it0.Iter != 0 || it0.Rank != 1 {
		t.Fatalf("iter 0 event = %+v", it0)
	}
	if got := it0.StagesMS["update_phi"]; got < 3 {
		t.Errorf("update_phi ms = %v, want >= 3 (accumulated)", got)
	}
	if it0.DKV == nil || it0.DKV.RemoteKeys != 30 {
		t.Errorf("iter 0 DKV = %+v, want remote_keys 30", it0.DKV)
	}
	it1 := events[2]
	if it1.DKV == nil || it1.DKV.RemoteKeys != 12 {
		t.Errorf("iter 1 DKV = %+v, want delta 12", it1.DKV)
	}
	if _, ok := it1.StagesMS["update_pi"]; ok {
		t.Error("iter 1 carries iter 0's update_pi stage — stages not cleared")
	}
	if events[3].Type != EventPerplexity || events[3].Perplexity != 99.5 {
		t.Errorf("perplexity event = %+v", events[3])
	}
	if events[4].Type != EventRunEnd || events[4].DKV == nil || events[4].DKV.RemoteKeys != 42 {
		t.Errorf("run_end = %+v, want cumulative remote_keys 42", events[4])
	}

	// The monitor gauges reflect the run's progress.
	if got := reg.Gauge(GaugeIteration).Load(); got != 2 {
		t.Errorf("iteration gauge = %v, want 2", got)
	}
	if got := reg.Gauge(GaugePerplexity).Load(); got != 99.5 {
		t.Errorf("perplexity gauge = %v, want 99.5", got)
	}
	// Stage latencies feed histograms.
	if got := reg.Histogram("stage.update_phi").Snapshot().Count; got != 3 {
		t.Errorf("stage.update_phi histogram count = %d, want 3", got)
	}
}

func TestRunRecorderNilSinkAndRegistry(t *testing.T) {
	// Monitor-only (nil sink) and event-only (nil registry) recorders must
	// both be usable without panics.
	reg := NewRegistry()
	rec := NewRunRecorder(nil, 0, reg)
	rec.StageDone(0, "update_phi", time.Millisecond)
	rec.IterDone(0)
	if got := reg.Gauge(GaugeIteration).Load(); got != 1 {
		t.Errorf("iteration gauge = %v, want 1", got)
	}

	var buf bytes.Buffer
	rec2 := NewRunRecorder(NewSink(&buf), 0, nil)
	rec2.StageDone(0, "update_phi", time.Millisecond)
	rec2.IterDone(0)
	rec2.RunEnd(1)
}

func TestMonitorServesRegistry(t *testing.T) {
	mon := NewMonitor("127.0.0.1:0")
	addr, err := mon.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	get := func() map[string]any {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("monitor response is not JSON: %v\n%s", err, body)
		}
		return doc
	}

	if doc := get(); doc["status"] != "waiting" {
		t.Errorf("pre-attach response = %v, want waiting status", doc)
	}

	reg := NewRegistry()
	reg.Counter(CtrDKVRequests).Add(7)
	reg.Gauge(GaugeIteration).Set(3)
	mon.Attach(reg)

	doc := get()
	counters, _ := doc["counters"].(map[string]any)
	if counters[CtrDKVRequests] != float64(7) {
		t.Errorf("monitor counters = %v, want %s=7", counters, CtrDKVRequests)
	}
	gauges, _ := doc["gauges"].(map[string]any)
	if gauges[GaugeIteration] != float64(3) {
		t.Errorf("monitor gauges = %v, want %s=3", gauges, GaugeIteration)
	}
}
