package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startMonitor(t *testing.T) (*Monitor, string) {
	t.Helper()
	m := NewMonitor("127.0.0.1:0")
	addr, err := m.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, addr
}

// TestMonitorRouteTable pins the explicit route set: /, /metrics and /events
// answer; every other path — including the catch-all-shaped /favicon.ico and
// the typo'd /metric — is a 404.
func TestMonitorRouteTable(t *testing.T) {
	m, addr := startMonitor(t)
	reg := NewRegistry()
	reg.Counter("test.counter").Add(7)
	m.Attach(reg)

	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/", "/metrics"} {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q, want application/json", path, ct)
		}
		resp.Body.Close()
	}
	for _, path := range []string{"/favicon.ico", "/metric", "/events/extra", "/debug/pprof/"} {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// readSSEFrames reads frames ("\n\n"-separated blocks) from an open SSE body.
func readSSEFrames(t *testing.T, br *bufio.Reader, n int) []string {
	t.Helper()
	var frames []string
	var cur strings.Builder
	for len(frames) < n {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE body ended early (%v) after %d frames: %q", err, len(frames), frames)
		}
		if line == "\n" {
			frames = append(frames, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteString(line)
	}
	return frames
}

// TestMonitorEventsSSE covers the /events handshake, live delivery, and
// Last-Event-ID resume.
func TestMonitorEventsSSE(t *testing.T) {
	m, addr := startMonitor(t)
	stream := m.EventStream()
	stream.Publish([]byte(`{"type":"iter","rank":0,"iter":0}`))
	stream.Publish([]byte(`{"type":"iter","rank":1,"iter":0}`))

	client := &http.Client{} // no timeout: the stream stays open
	resp, err := client.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(resp.Body)
	// Handshake comment, then the two buffered events replayed.
	frames := readSSEFrames(t, br, 3)
	if !strings.HasPrefix(frames[0], ":") {
		t.Fatalf("first frame is not the handshake comment: %q", frames[0])
	}
	for i, want := range []string{"id: 1\n", "id: 2\n"} {
		if !strings.HasPrefix(frames[i+1], want) {
			t.Fatalf("replay frame %d = %q, want prefix %q", i, frames[i+1], want)
		}
		if !strings.Contains(frames[i+1], `data: {"type":"iter"`) {
			t.Fatalf("replay frame %d carries no event data: %q", i, frames[i+1])
		}
	}
	// A live publish reaches the open connection.
	stream.Publish([]byte(`{"type":"run_end","rank":0}`))
	live := readSSEFrames(t, br, 1)
	if !strings.HasPrefix(live[0], "id: 3\n") || !strings.Contains(live[0], "run_end") {
		t.Fatalf("live frame = %q, want id 3 with run_end data", live[0])
	}
}

func TestMonitorEventsResume(t *testing.T) {
	m, addr := startMonitor(t)
	stream := m.EventStream()
	for i := 0; i < 5; i++ {
		stream.Publish([]byte(fmt.Sprintf(`{"type":"iter","rank":0,"iter":%d}`, i)))
	}
	req, err := http.NewRequest("GET", "http://"+addr+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "3")
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	frames := readSSEFrames(t, br, 3) // handshake + events 4 and 5
	if !strings.HasPrefix(frames[1], "id: 4\n") || !strings.HasPrefix(frames[2], "id: 5\n") {
		t.Fatalf("resume after id 3 replayed %q, want ids 4 and 5", frames[1:])
	}
}

func TestMonitorEventsBadLastEventID(t *testing.T) {
	_, addr := startMonitor(t)
	req, err := http.NewRequest("GET", "http://"+addr+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID got %d, want 400", resp.StatusCode)
	}
}

// TestSinkTeeFeedsStream: lines emitted through a teed sink appear on the
// stream byte-for-byte (modulo the newline the file gets and SSE does not).
func TestSinkTeeFeedsStream(t *testing.T) {
	var sb strings.Builder
	sink := NewSink(&sb)
	stream := NewStream(8)
	sink.Tee(stream)
	e := Event{Type: EventRunStart, Rank: 0, Ranks: 2, Iterations: 7}
	if err := sink.Emit(&e); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	evs := stream.Since(0)
	if len(evs) != 1 {
		t.Fatalf("stream got %d events, want 1", len(evs))
	}
	if got, want := string(evs[0].Data)+"\n", sb.String(); got != want {
		t.Fatalf("teed line %q differs from sink line %q", got, want)
	}
}

// TestMonitorShutdownDrainsSSE: Shutdown must return promptly even with a
// live SSE stream open — the handler watches the done channel — and the
// listener must stop accepting afterwards. A second Shutdown (or Close) is a
// no-op.
func TestMonitorShutdownDrainsSSE(t *testing.T) {
	m, addr := startMonitor(t)
	m.Attach(NewRegistry())

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readSSEFrames(t, br, 1) // the ": stream open" handshake — handler is live

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Shutdown took %v with one SSE client, want prompt drain", d)
	}
	// The open SSE body must now terminate instead of hanging.
	if _, err := io.ReadAll(br); err != nil && !strings.Contains(err.Error(), "EOF") {
		t.Logf("SSE body ended with: %v", err) // any termination is fine
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}

// TestMonitorTraceRoute pins the /trace contract: 404 before a provider is
// attached (hardened route discipline), a live Chrome trace download after.
func TestMonitorTraceRoute(t *testing.T) {
	m, addr := startMonitor(t)
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get("http://" + addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace before AttachTrace: status %d, want 404", resp.StatusCode)
	}

	tr := NewTracer(0, 0)
	tr.Emit(Span{ID: tr.NewID(), Name: "iter", Cat: CatIter, Peer: NoPeer, Iter: 0, StartNS: 1, DurNS: 2})
	m.AttachTrace(func() []TraceBundle { return []TraceBundle{tr.Bundle()} })

	resp, err = client.Get("http://" + addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace after AttachTrace: status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	bundles, err := ReadChromeTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 || len(bundles[0].Spans) != 1 || bundles[0].Spans[0].Name != "iter" {
		t.Fatalf("live trace round trip: %+v", bundles)
	}
}

// TestMonitorPprofOptIn pins the -pprof gate: without EnablePprof the profile
// paths are 404 like any unknown route; with it they answer, and unrelated
// unknown paths still 404.
func TestMonitorPprofOptIn(t *testing.T) {
	client := &http.Client{Timeout: 10 * time.Second}

	_, addr := startMonitor(t)
	resp, err := client.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without EnablePprof: status %d, want 404", resp.StatusCode)
	}

	m := NewMonitor("127.0.0.1:0")
	m.EnablePprof()
	paddr, err := m.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/block", "/debug/pprof/cmdline"} {
		resp, err := client.Get("http://" + paddr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with EnablePprof: status %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err = client.Get("http://" + paddr + "/favicon.ico")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path with pprof on: status %d, want 404", resp.StatusCode)
	}
}
