package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Monitor is the live HTTP endpoint of a run. It serves exactly three
// routes — anything else is a 404, so a typo'd path can never silently
// return the full metrics document:
//
//	/         the attached registry as one JSON document (alias of /metrics)
//	/metrics  same
//	/events   Server-Sent Events: the JSONL telemetry stream, live
//
// /events streams the same lines the file sink receives (Sink.Tee feeds the
// monitor's Stream): each SSE frame is `id: <n>` + `data: <one JSON event>`.
// A bounded ring buffer (DefaultStreamCapacity events) backs the endpoint,
// so a client that reconnects with a Last-Event-ID header resumes from the
// first event it missed, as long as it is still inside the window; a client
// too slow to drain its queue has events dropped rather than stalling the
// run, and detects the loss as a gap in the ids.
//
// Lifecycle: NewMonitor(addr) → Start (binds and serves in the background)
// → Attach(registry) once the run's rank-0 registry exists → Shutdown (or
// Close). A GET before Attach answers {"status":"waiting"}.
type Monitor struct {
	addr string

	mu      sync.Mutex
	reg     *Registry
	stream  *Stream
	ln      net.Listener
	srv     *http.Server
	done    chan struct{} // closed on Shutdown/Close; SSE handlers watch it
	pprofOn bool
	traceFn func() []TraceBundle
}

// NewMonitor creates a monitor that will listen on addr (host:port; an
// empty host binds all interfaces, port 0 picks a free port).
func NewMonitor(addr string) *Monitor { return &Monitor{addr: addr} }

// Attach sets the registry the endpoint serves; typically called by the
// distributed engine with rank 0's registry. Attaching also wires the event
// stream's drop accounting into the registry (obs.events_dropped), so silent
// SSE fan-out loss shows up in /metrics.
func (m *Monitor) Attach(reg *Registry) {
	stream := m.EventStream() // before taking m.mu: EventStream locks it too
	if reg != nil {
		stream.SetDropCounter(reg.Counter(CtrEventsDropped))
	}
	m.mu.Lock()
	m.reg = reg
	m.mu.Unlock()
}

// AttachTrace installs the provider behind the /trace route: a snapshot of
// the run's span bundles, rendered as a Chrome trace-event download. Before
// a provider is attached, /trace answers 404 like any unknown path.
func (m *Monitor) AttachTrace(provider func() []TraceBundle) {
	m.mu.Lock()
	m.traceFn = provider
	m.mu.Unlock()
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the next Start —
// an explicit opt-in (the -pprof flag), never ambient, because the profile
// endpoints expose symbolised internals and cost sampling overhead. Block
// profiling is switched on at a 100µs sampling rate so contended-mutex and
// channel waits show up in /debug/pprof/block without measurably slowing
// the run. Must be called before Start.
func (m *Monitor) EnablePprof() {
	m.mu.Lock()
	m.pprofOn = true
	m.mu.Unlock()
	runtime.SetBlockProfileRate(100_000)
}

// EventStream returns the stream backing /events, creating it on first use.
// The engine tees its event sink into it (Sink.Tee) so SSE clients receive
// every rank's events live.
func (m *Monitor) EventStream() *Stream {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stream == nil {
		m.stream = NewStream(DefaultStreamCapacity)
	}
	return m.stream
}

// Start binds the listener and serves in a background goroutine. It returns
// the bound address (useful with port 0).
func (m *Monitor) Start() (string, error) {
	ln, err := net.Listen("tcp", m.addr)
	if err != nil {
		return "", err
	}
	// The explicit route table 404s everything it doesn't name — including
	// sub-paths of "/", which net/http would otherwise catch-all.
	routes := Routes{
		"/":        m.handleMetrics,
		"/metrics": m.handleMetrics,
		"/events":  m.handleEvents,
		"/trace":   m.handleTrace,
	}
	m.mu.Lock()
	pprofOn := m.pprofOn
	m.mu.Unlock()
	if pprofOn {
		// The trailing-slash entry gets ServeMux subtree matching, so the
		// named profiles (/debug/pprof/heap, goroutine, block, ...) resolve
		// through pprof.Index; the four non-profile handlers need their own
		// exact entries. Everything else still 404s.
		routes["/debug/pprof/"] = pprof.Index
		routes["/debug/pprof/cmdline"] = pprof.Cmdline
		routes["/debug/pprof/profile"] = pprof.Profile
		routes["/debug/pprof/symbol"] = pprof.Symbol
		routes["/debug/pprof/trace"] = pprof.Trace
	}
	mux := routes.Mux()
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	m.mu.Lock()
	m.ln = ln
	m.srv = srv
	m.done = make(chan struct{})
	m.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// handleMetrics renders the registry snapshot as indented JSON.
func (m *Monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	reg := m.reg
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	var doc any
	if reg == nil {
		doc = map[string]string{"status": "waiting"}
	} else {
		doc = reg.Snapshot()
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	buf = append(buf, '\n')
	_, _ = w.Write(buf)
}

// handleTrace serves the live span timeline as a Chrome trace-event
// download — the same bytes -trace-out writes at run end, but snapshotted
// mid-run, so a hung or slow run can be inspected in Perfetto while it is
// still hanging. 404 until a provider is attached, keeping the hardened
// route discipline (the path only exists when there is something behind it).
func (m *Monitor) handleTrace(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	provider := m.traceFn
	m.mu.Unlock()
	if provider == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="run.trace.json"`)
	_ = WriteChromeTrace(w, provider()) // mid-stream write errors: client gone
}

// handleEvents is the SSE endpoint: replay the buffered backlog after the
// client's Last-Event-ID, then stream live events until the client hangs up
// or the monitor closes. Frames are flushed per event; a comment heartbeat
// keeps idle connections alive through proxies.
func (m *Monitor) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad Last-Event-ID", http.StatusBadRequest)
			return
		}
		lastID = id
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	m.mu.Lock()
	done := m.done
	m.mu.Unlock()

	backlog, sub, cancel := m.EventStream().SubscribeFrom(lastID, 0)
	defer cancel()

	// An initial comment confirms the handshake even before any event exists.
	fmt.Fprintf(w, ": stream open\n\n")
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-done:
			// Graceful shutdown: an SSE stream never ends on its own, so
			// Shutdown's drain would wait forever without this exit.
			return
		case ev := <-sub.C:
			writeSSE(w, ev)
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": ping\n\n")
			flusher.Flush()
		}
	}
}

// writeSSE emits one event frame. Event data is single-line JSON, so the
// one-data-line framing is always valid.
func writeSSE(w http.ResponseWriter, ev StreamEvent) {
	fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.ID, ev.Data)
}

// detach takes ownership of the server for teardown: it returns the live
// *http.Server (nil if never started or already torn down) and closes the
// done channel so streaming handlers finish their in-flight frame and
// return. Idempotent; Shutdown and Close race safely through it.
func (m *Monitor) detach() *http.Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	srv := m.srv
	m.srv = nil
	if m.done != nil {
		close(m.done)
		m.done = nil
	}
	return srv
}

// Shutdown stops the server gracefully: the listener closes immediately (no
// new connections), streaming handlers are told to return, and in-flight
// requests drain until done or ctx expires — at which point the remaining
// connections are closed hard. A monitor that was never started shuts down
// cleanly.
func (m *Monitor) Shutdown(ctx context.Context) error {
	srv := m.detach()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// Close stops the server immediately (active SSE connections are torn down,
// which cancels their request contexts); a monitor that was never started
// closes cleanly.
func (m *Monitor) Close() error {
	srv := m.detach()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
