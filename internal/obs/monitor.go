package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"time"
)

// Monitor is the expvar-style live endpoint: an HTTP server that renders
// the attached registry as one JSON document, so a multi-hour run can be
// watched (current iteration, perplexity, counters, stage latency
// percentiles) without interrupting it.
//
// Lifecycle: NewMonitor(addr) → Start (binds and serves in the background)
// → Attach(registry) once the run's rank-0 registry exists → Close. A GET
// before Attach answers {"status":"waiting"}.
type Monitor struct {
	addr string

	mu  sync.Mutex
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// NewMonitor creates a monitor that will listen on addr (host:port; an
// empty host binds all interfaces, port 0 picks a free port).
func NewMonitor(addr string) *Monitor { return &Monitor{addr: addr} }

// Attach sets the registry the endpoint serves; typically called by the
// distributed engine with rank 0's registry.
func (m *Monitor) Attach(reg *Registry) {
	m.mu.Lock()
	m.reg = reg
	m.mu.Unlock()
}

// Start binds the listener and serves in a background goroutine. It returns
// the bound address (useful with port 0).
func (m *Monitor) Start() (string, error) {
	ln, err := net.Listen("tcp", m.addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", m.handle)
	mux.HandleFunc("/metrics", m.handle)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	m.mu.Lock()
	m.ln = ln
	m.srv = srv
	m.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// handle renders the registry snapshot as indented JSON.
func (m *Monitor) handle(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	reg := m.reg
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	var doc any
	if reg == nil {
		doc = map[string]string{"status": "waiting"}
	} else {
		doc = reg.Snapshot()
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	buf = append(buf, '\n')
	_, _ = w.Write(buf)
}

// Close stops the server; a monitor that was never started closes cleanly.
func (m *Monitor) Close() error {
	m.mu.Lock()
	srv := m.srv
	m.srv = nil
	m.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
