package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Per-peer transport counters. The instrumented transport keeps, next to the
// aggregate transport.* counters, one counter per (kind, peer) under the
// canonical names
//
//	transport.peer.<peer>.msgs_sent
//	transport.peer.<peer>.bytes_sent
//	transport.peer.<peer>.msgs_recv
//	transport.peer.<peer>.bytes_recv
//	transport.peer.<peer>.recv_wait_ns
//
// where <peer> is the remote rank. recv_wait_ns is the total time this rank
// spent blocked in a targeted Recv waiting for that peer — the signal that
// localises a straggler: a slow peer shows up as a large recv-wait column in
// every other rank's registry, not just as a large total somewhere.
const (
	peerPrefix = "transport.peer."

	PeerMsgsSent   = "msgs_sent"
	PeerBytesSent  = "bytes_sent"
	PeerMsgsRecv   = "msgs_recv"
	PeerBytesRecv  = "bytes_recv"
	PeerRecvWaitNS = "recv_wait_ns"
)

// PeerCounterName returns the canonical per-peer counter name
// transport.peer.<peer>.<kind>.
func PeerCounterName(peer int, kind string) string {
	return peerPrefix + strconv.Itoa(peer) + "." + kind
}

// ParsePeerCounter splits a canonical per-peer counter name into the peer
// rank and the kind suffix; ok is false for any other name.
func ParsePeerCounter(name string) (peer int, kind string, ok bool) {
	rest, found := strings.CutPrefix(name, peerPrefix)
	if !found {
		return 0, "", false
	}
	num, kind, found := strings.Cut(rest, ".")
	if !found || kind == "" {
		return 0, "", false
	}
	peer, err := strconv.Atoi(num)
	if err != nil || peer < 0 {
		return 0, "", false
	}
	return peer, kind, true
}

// PhaseWaitName returns the canonical name of the per-phase transport wait
// histogram, transport.wait.<phase> — the time blocked in targeted receives
// while the engine was in that phase. See cluster.Comm.SetPhase.
func PhaseWaitName(phase string) string { return "transport.wait." + phase }

// PeerMatrix is the square per-(rank, peer) traffic/latency view of a
// distributed run: row r is what rank r's instrumented endpoint recorded
// about each peer. Row sums therefore equal rank r's aggregate transport.*
// counters, and column p is the traffic/wait the cluster directed at (or
// suffered from) peer p.
type PeerMatrix struct {
	Ranks      int         `json:"ranks"`
	MsgsSent   [][]int64   `json:"msgs_sent"`
	BytesSent  [][]int64   `json:"bytes_sent"`
	MsgsRecv   [][]int64   `json:"msgs_recv"`
	BytesRecv  [][]int64   `json:"bytes_recv"`
	RecvWaitMS [][]float64 `json:"recv_wait_ms"`
}

// NewPeerMatrix folds per-rank registry snapshots (snaps[r] belongs to rank
// r) into the square matrix. Counters naming peers outside [0, len(snaps))
// are ignored.
func NewPeerMatrix(snaps []Snapshot) *PeerMatrix {
	n := len(snaps)
	m := &PeerMatrix{
		Ranks:      n,
		MsgsSent:   makeInt64Grid(n),
		BytesSent:  makeInt64Grid(n),
		MsgsRecv:   makeInt64Grid(n),
		BytesRecv:  makeInt64Grid(n),
		RecvWaitMS: makeFloatGrid(n),
	}
	for r, snap := range snaps {
		for name, v := range snap.Counters {
			peer, kind, ok := ParsePeerCounter(name)
			if !ok || peer >= n {
				continue
			}
			switch kind {
			case PeerMsgsSent:
				m.MsgsSent[r][peer] = v
			case PeerBytesSent:
				m.BytesSent[r][peer] = v
			case PeerMsgsRecv:
				m.MsgsRecv[r][peer] = v
			case PeerBytesRecv:
				m.BytesRecv[r][peer] = v
			case PeerRecvWaitNS:
				m.RecvWaitMS[r][peer] = float64(v) / 1e6
			}
		}
	}
	return m
}

func makeInt64Grid(n int) [][]int64 {
	g := make([][]int64, n)
	for i := range g {
		g[i] = make([]int64, n)
	}
	return g
}

func makeFloatGrid(n int) [][]float64 {
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	return g
}

// ImposedWaitMS returns, per peer, the total time all other ranks spent
// blocked waiting for that peer (the recv-wait column sum excluding the
// diagonal) — the per-peer straggler signal.
func (m *PeerMatrix) ImposedWaitMS() []float64 {
	out := make([]float64, m.Ranks)
	for r := 0; r < m.Ranks; r++ {
		for p := 0; p < m.Ranks; p++ {
			if p != r {
				out[p] += m.RecvWaitMS[r][p]
			}
		}
	}
	return out
}

// PeerReport is the straggler verdict derived from a PeerMatrix (or, in
// obs.Summarize, from the per-peer wait deltas carried by iter events).
type PeerReport struct {
	// ImposedWaitMS[p] is the total recv-wait peer p imposed on all other
	// ranks.
	ImposedWaitMS []float64 `json:"imposed_wait_ms"`
	MedianMS      float64   `json:"median_ms"`
	MaxMS         float64   `json:"max_ms"`
	// Skew is MaxMS over the (floor-clamped) median; 1 means balanced.
	Skew float64 `json:"skew"`
	// Flagged lists the peers whose imposed wait clears both the skew factor
	// and the absolute floor — the localised stragglers.
	Flagged []int `json:"flagged,omitempty"`
}

// Straggler flags the peers whose imposed recv-wait is skewed against the
// cluster median.
func (m *PeerMatrix) Straggler() *PeerReport {
	return stragglerReport(m.ImposedWaitMS())
}

// Straggler flagging thresholds: a peer is flagged when the wait it imposes
// on the rest of the cluster is at least StragglerSkew times the (lower)
// median imposed wait and at least StragglerFloorMS in absolute terms. The
// floor keeps microsecond noise in fast balanced runs from being flagged,
// and stands in for the median in the skew ratio when the median itself is
// below it (with 2 ranks the lower median is the fast peer, which can be
// arbitrarily close to zero).
const (
	StragglerSkew    = 2.0
	StragglerFloorMS = 1.0
)

// stragglerReport applies the default flagging rule to a per-peer
// imposed-wait vector.
func stragglerReport(waits []float64) *PeerReport {
	return StragglerWaits(waits, StragglerSkew, StragglerFloorMS)
}

// StragglerWaits applies the straggler flagging rule to a raw per-peer
// imposed-wait vector (milliseconds): peer p is flagged when
// waits[p] >= skew·denom and waits[p] >= floorMS, where denom is the
// floor-clamped lower median of the vector. It is the single rule behind
// PeerMatrix.Straggler, the stream-side Summarize verdict, and the
// rebalancer's per-window flagging; skew/floorMS ≤ 0 select the defaults.
//
// Degenerate cluster sizes are explicit, not accidental:
//
//   - 1 rank: the imposed-wait vector is the single peer's column sum with
//     the diagonal excluded, which is identically zero — below the floor, so
//     nothing is ever flagged. There is no one to rebalance against.
//   - 2 ranks: the "lower median excluding self" denominator degenerates to
//     a single sample — the *faster* peer's imposed wait, which in a healthy
//     run is arbitrarily close to zero. The floor clamp is what makes the
//     rule usable here: the slow peer is compared against
//     max(fastWait, floorMS), so a genuine straggler (wait ≥ skew·floor) is
//     flagged, while sub-floor noise — microsecond scheduling jitter in a
//     2-rank CI run — never is, even when the ratio between the two peers
//     is huge. Both directions are pinned by TestStragglerTwoRanks.
func StragglerWaits(waits []float64, skew, floorMS float64) *PeerReport {
	if skew <= 0 {
		skew = StragglerSkew
	}
	if floorMS <= 0 {
		floorMS = StragglerFloorMS
	}
	rep := &PeerReport{ImposedWaitMS: waits}
	if len(waits) == 0 {
		return rep
	}
	sorted := append([]float64(nil), waits...)
	sort.Float64s(sorted)
	rep.MedianMS = sorted[(len(sorted)-1)/2] // lower median: robust at 2 ranks
	rep.MaxMS = sorted[len(sorted)-1]
	denom := rep.MedianMS
	if denom < floorMS {
		denom = floorMS
	}
	rep.Skew = rep.MaxMS / denom
	for p, w := range waits {
		if w >= skew*denom && w >= floorMS {
			rep.Flagged = append(rep.Flagged, p)
		}
	}
	return rep
}

// String renders the report as the one-line digest ocd-cluster and
// ocd-analyze print.
func (r *PeerReport) String() string {
	var b strings.Builder
	b.WriteString("peer recv-wait imposed on others (ms):")
	for p, w := range r.ImposedWaitMS {
		fmt.Fprintf(&b, " rank%d %.1f", p, w)
	}
	fmt.Fprintf(&b, "; skew %.2f", r.Skew)
	if len(r.Flagged) > 0 {
		b.WriteString(" — straggler:")
		for _, p := range r.Flagged {
			fmt.Fprintf(&b, " rank %d", p)
		}
	}
	return b.String()
}
