package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	if err := FDRInfiniBand().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DKVStore().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []Model{
		{LatencySec: -1, BandwidthBytesPerSec: 1},
		{LatencySec: 0, BandwidthBytesPerSec: 0},
		{LatencySec: 0, BandwidthBytesPerSec: 1, RequestOverheadSec: -1},
		{LatencySec: 0, BandwidthBytesPerSec: 1, ScatterFactor: 2},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	m := FDRInfiniBand()
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.TransferTime(a) <= m.TransferTime(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthApproachesLineRate(t *testing.T) {
	m := FDRInfiniBand()
	small := m.Bandwidth(64)
	big := m.Bandwidth(32 << 20)
	if small >= big {
		t.Fatalf("bandwidth not increasing: %v vs %v", small, big)
	}
	if big < 0.99*m.BandwidthBytesPerSec {
		t.Fatalf("asymptotic bandwidth %v below line rate %v", big, m.BandwidthBytesPerSec)
	}
	if small > 0.1*m.BandwidthBytesPerSec {
		t.Fatalf("64B transfers should be latency-bound, got %v", small)
	}
}

func TestLatencyFloor(t *testing.T) {
	m := FDRInfiniBand()
	if got := m.TransferTime(0); math.Abs(got-m.LatencySec) > 1e-15 {
		t.Fatalf("zero-byte transfer = %v, want latency %v", got, m.LatencySec)
	}
}

func TestScatterPenaltyAppliesAboveThreshold(t *testing.T) {
	m := DKVStore()
	below := int(m.ScatterThresholdBytes) - 1
	above := int(m.ScatterThresholdBytes)
	// Effective bandwidth drops discontinuously at the threshold.
	bwBelow := float64(below) / (m.TransferTime(below) - m.LatencySec - m.RequestOverheadSec)
	bwAbove := float64(above) / (m.TransferTime(above) - m.LatencySec - m.RequestOverheadSec)
	if bwAbove >= bwBelow {
		t.Fatalf("scatter penalty missing: %v vs %v", bwAbove, bwBelow)
	}
	if ratio := bwAbove / bwBelow; math.Abs(ratio-m.ScatterFactor) > 0.01 {
		t.Fatalf("penalty ratio %v, want %v", ratio, m.ScatterFactor)
	}
}

func TestDKVAlwaysSlowerThanRaw(t *testing.T) {
	raw, dkv := FDRInfiniBand(), DKVStore()
	for p := 64; p <= 1<<21; p *= 4 {
		if dkv.TransferTime(p) <= raw.TransferTime(p) {
			t.Fatalf("payload %d: DKV op not slower than raw", p)
		}
	}
}

func TestBatchTimeSharedLatency(t *testing.T) {
	m := DKVStore()
	if m.BatchTime(1<<16, 4) != m.BatchTime(1<<16, 1) {
		t.Fatal("parallel requests should share one latency round")
	}
	if m.BatchTime(1<<16, 0) != m.BatchTime(1<<16, 1) {
		t.Fatal("nRequests floor of 1 not applied")
	}
}
