// Package simnet models the cluster interconnect: an FDR-InfiniBand-like
// link with base latency, line-rate bandwidth, and the per-request overhead
// that distinguishes the DKV store from raw RDMA. The model is what stands
// in for the paper's physical network (see DESIGN.md substitutions); it
// drives Figure 5 directly and supplies the communication terms of the
// perfmodel cost model behind Figures 1-4 and Table III.
package simnet

import "fmt"

// Model describes one link of the interconnect.
type Model struct {
	// LatencySec is the one-way base latency of an operation (seconds).
	LatencySec float64
	// BandwidthBytesPerSec is the sustained line rate.
	BandwidthBytesPerSec float64
	// RequestOverheadSec is the extra per-request software cost a DKV
	// operation pays over a raw RDMA read (request parsing, batch
	// scatter/gather). Zero for the qperf-style raw baseline.
	RequestOverheadSec float64
	// ScatterPenalty models the paper's observation that very large DKV
	// reads fall slightly below qperf because values are spread over a
	// larger memory area: the effective bandwidth for payloads above
	// ScatterThresholdBytes is multiplied by ScatterFactor (≤ 1).
	ScatterThresholdBytes float64
	ScatterFactor         float64
}

// FDRInfiniBand returns the raw-link model matching the DAS5 fabric: ~1.5 µs
// latency and ~6.8 GB/s sustained bandwidth (56 Gb/s signalling minus
// encoding overhead). This is the "qperf" curve of Figure 5.
func FDRInfiniBand() Model {
	return Model{
		LatencySec:           1.5e-6,
		BandwidthBytesPerSec: 6.8e9,
	}
}

// DKVStore returns the model of the paper's key-value store on the same
// fabric: the same wire, plus per-request software overhead and the
// large-payload memory-scatter penalty.
func DKVStore() Model {
	m := FDRInfiniBand()
	m.RequestOverheadSec = 0.3e-6
	m.ScatterThresholdBytes = 512 << 10
	m.ScatterFactor = 0.82
	return m
}

// Validate reports the first invalid field.
func (m Model) Validate() error {
	switch {
	case m.LatencySec < 0:
		return fmt.Errorf("simnet: negative latency")
	case m.BandwidthBytesPerSec <= 0:
		return fmt.Errorf("simnet: non-positive bandwidth")
	case m.RequestOverheadSec < 0:
		return fmt.Errorf("simnet: negative request overhead")
	case m.ScatterFactor < 0 || m.ScatterFactor > 1:
		return fmt.Errorf("simnet: scatter factor %v out of [0,1]", m.ScatterFactor)
	}
	return nil
}

// TransferTime returns the modeled seconds to move one payload of the given
// size as a single operation.
func (m Model) TransferTime(payloadBytes int) float64 {
	bw := m.BandwidthBytesPerSec
	if m.ScatterThresholdBytes > 0 && float64(payloadBytes) >= m.ScatterThresholdBytes && m.ScatterFactor > 0 {
		bw *= m.ScatterFactor
	}
	return m.LatencySec + m.RequestOverheadSec + float64(payloadBytes)/bw
}

// Bandwidth returns the effective bandwidth (bytes/sec) achieved when
// streaming back-to-back operations of the given payload size — the y-axis
// of Figure 5.
func (m Model) Bandwidth(payloadBytes int) float64 {
	t := m.TransferTime(payloadBytes)
	if t <= 0 {
		return 0
	}
	return float64(payloadBytes) / t
}

// BatchTime returns the modeled seconds for a batch operation that moves
// totalBytes split across nRequests concurrent requests to distinct servers:
// the requests pay one shared latency+overhead round (they are issued in
// parallel) plus serialised wire time on this node's link.
func (m Model) BatchTime(totalBytes int, nRequests int) float64 {
	if nRequests < 1 {
		nRequests = 1
	}
	return m.LatencySec + m.RequestOverheadSec + float64(totalBytes)/m.BandwidthBytesPerSec
}
