// Package metrics scores detected overlapping communities against planted
// ground truth. Two standard scores are provided: the symmetric average
// best-match F1 of Yang & Leskovec, and the overlapping normalized mutual
// information (NMI) of Lancichinetti, Fortunato & Kertész. Both treat a
// community as a set of vertices and a "cover" as a set of communities that
// may overlap.
package metrics

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Cover is a set of (possibly overlapping) communities over N vertices.
type Cover struct {
	N       int
	Members [][]int32
}

// NewCover builds a cover, dropping empty communities and deduplicating
// members within each community.
func NewCover(n int, members [][]int32) *Cover {
	out := make([][]int32, 0, len(members))
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		c := append([]int32(nil), m...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		dedup := c[:1]
		for _, v := range c[1:] {
			if v != dedup[len(dedup)-1] {
				dedup = append(dedup, v)
			}
		}
		out = append(out, dedup)
	}
	return &Cover{N: n, Members: out}
}

// FromState thresholds the model's π matrix into a cover: vertex a belongs
// to community k when π_ak > threshold. A threshold of 0 uses the adaptive
// default 1.5/K, which separates "active" memberships from the Dirichlet
// floor.
func FromState(s *core.State, threshold float64) *Cover {
	if threshold <= 0 {
		threshold = 1.5 / float64(s.K)
	}
	members := make([][]int32, s.K)
	for a := 0; a < s.N; a++ {
		row := s.PiRow(a)
		for k, v := range row {
			if float64(v) > threshold {
				members[k] = append(members[k], int32(a))
			}
		}
	}
	return NewCover(s.N, members)
}

// f1 returns the F1 score between two sorted member lists.
func f1(a, b []int32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	if inter == 0 {
		return 0
	}
	prec := float64(inter) / float64(len(a))
	rec := float64(inter) / float64(len(b))
	return 2 * prec * rec / (prec + rec)
}

// F1Score returns the symmetric average best-match F1 between a detected
// cover and the ground truth:
//
//	½ · ( avg_d max_t F1(d, t) + avg_t max_d F1(d, t) )
//
// 1.0 means a perfect reconstruction; a random cover scores near the overlap
// of community size distributions.
func F1Score(detected, truth *Cover) float64 {
	if len(detected.Members) == 0 || len(truth.Members) == 0 {
		return 0
	}
	avgBest := func(from, to [][]int32) float64 {
		var total float64
		for _, f := range from {
			best := 0.0
			for _, t := range to {
				if s := f1(f, t); s > best {
					best = s
				}
			}
			total += best
		}
		return total / float64(len(from))
	}
	return 0.5 * (avgBest(detected.Members, truth.Members) + avgBest(truth.Members, detected.Members))
}

// binaryEntropy returns H(p) for a Bernoulli(p) variable, in nats.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// h is the plug-in entropy of a count out of n.
func h(count, n int) float64 {
	if count <= 0 || n <= 0 {
		return 0
	}
	p := float64(count) / float64(n)
	if p >= 1 {
		return 0
	}
	return -p * math.Log(p)
}

// NMI computes the overlapping normalized mutual information of
// Lancichinetti, Fortunato & Kertész (2009) between two covers. It treats
// each community as a binary membership vector over the N vertices and
// returns 1 for identical covers, ~0 for independent ones.
func NMI(x, y *Cover) float64 {
	if x.N != y.N {
		panic("metrics: covers over different vertex counts")
	}
	if len(x.Members) == 0 || len(y.Members) == 0 {
		return 0
	}
	n := x.N
	condX := conditionalEntropy(x, y, n)
	condY := conditionalEntropy(y, x, n)
	hx := coverEntropy(x, n)
	hy := coverEntropy(y, n)
	if hx == 0 || hy == 0 {
		return 0
	}
	return 1 - 0.5*(condX/hx+condY/hy)
}

// coverEntropy returns Σ_k H(X_k) over the cover's communities.
func coverEntropy(c *Cover, n int) float64 {
	var total float64
	for _, m := range c.Members {
		total += binaryEntropy(float64(len(m)) / float64(n))
	}
	return total
}

// conditionalEntropy returns H(X|Y) = Σ_k min_l H(X_k | Y_l), normalised per
// community by H(X_k) as in the LFK definition, then multiplied back so the
// caller can divide by Σ H(X_k).
func conditionalEntropy(x, y *Cover, n int) float64 {
	var total float64
	for _, xk := range x.Members {
		hxk := binaryEntropy(float64(len(xk)) / float64(n))
		if hxk == 0 {
			continue
		}
		best := hxk // H(X_k | Y_l) is capped at H(X_k) by definition
		xset := toSet(xk)
		for _, yl := range y.Members {
			c11 := 0
			for _, v := range yl {
				if xset[v] {
					c11++
				}
			}
			c10 := len(xk) - c11       // in X, not in Y
			c01 := len(yl) - c11       // in Y, not in X
			c00 := n - c11 - c10 - c01 // in neither
			// LFK constraint: only accept candidates where the positive
			// agreement carries more information than the disagreement,
			// otherwise complementary sets would spuriously match.
			if h(c11, n)+h(c00, n) < h(c01, n)+h(c10, n) {
				continue
			}
			hyl := binaryEntropy(float64(len(yl)) / float64(n))
			cond := h(c11, n) + h(c00, n) + h(c01, n) + h(c10, n) - hyl
			if cond < best {
				best = cond
			}
		}
		total += best
	}
	return total
}

func toSet(m []int32) map[int32]bool {
	s := make(map[int32]bool, len(m))
	for _, v := range m {
		s[v] = true
	}
	return s
}

// ConvergenceDetector implements the stopping rule used by the convergence
// experiments (Figure 6): training has converged when the relative change of
// the smoothed perplexity over a window falls below a tolerance.
type ConvergenceDetector struct {
	window  int
	tol     float64
	history []float64
}

// NewConvergenceDetector creates a detector with the given smoothing window
// (number of recent perplexity evaluations compared) and relative tolerance.
func NewConvergenceDetector(window int, tol float64) *ConvergenceDetector {
	if window < 2 {
		window = 2
	}
	return &ConvergenceDetector{window: window, tol: tol}
}

// Add records a perplexity evaluation and reports whether the series has
// converged: the mean of the last half-window is within tol (relatively) of
// the mean of the preceding half-window.
func (d *ConvergenceDetector) Add(perplexity float64) bool {
	d.history = append(d.history, perplexity)
	if len(d.history) < d.window {
		return false
	}
	recent := d.history[len(d.history)-d.window:]
	half := d.window / 2
	older := mean(recent[:half])
	newer := mean(recent[half:])
	if older == 0 {
		return false
	}
	return math.Abs(newer-older)/older < d.tol
}

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// LinkAUC scores the model as a link predictor: the probability that a
// uniformly random held-out LINK receives a higher modeled link probability
// than a uniformly random held-out NON-link (area under the ROC curve).
// 0.5 is chance; 1.0 is perfect ranking. It complements perplexity with a
// calibration-free view of the same held-out set.
func LinkAUC(s *core.State, pairs [][2]int32, linked []bool, delta float64) float64 {
	type scored struct {
		p    float64
		link bool
	}
	items := make([]scored, len(pairs))
	nPos := 0
	for i, pr := range pairs {
		items[i] = scored{
			p:    core.EdgeProbability(s.PiRow(int(pr[0])), s.PiRow(int(pr[1])), s.Beta, delta, true),
			link: linked[i],
		}
		if linked[i] {
			nPos++
		}
	}
	nNeg := len(pairs) - nPos
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(items, func(i, j int) bool { return items[i].p < items[j].p })
	// Rank-sum (Mann-Whitney) with midranks for ties.
	var rankSum float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].p == items[i].p {
			j++
		}
		midrank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if items[k].link {
				rankSum += midrank
			}
		}
		i = j
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}
