package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// ExampleF1Score scores a detected cover against planted ground truth.
func ExampleF1Score() {
	truth := metrics.NewCover(8, [][]int32{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
	})
	perfect := metrics.NewCover(8, [][]int32{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
	})
	partial := metrics.NewCover(8, [][]int32{
		{0, 1, 2},
		{4, 5, 6, 7},
	})
	fmt.Printf("perfect: %.2f\n", metrics.F1Score(perfect, truth))
	fmt.Printf("partial: %.2f\n", metrics.F1Score(partial, truth))
	// Output:
	// perfect: 1.00
	// partial: 0.93
}

// ExampleNMI compares covers with the overlapping normalized mutual
// information.
func ExampleNMI() {
	a := metrics.NewCover(10, [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
	fmt.Printf("self: %.2f\n", metrics.NMI(a, a))
	// Output:
	// self: 1.00
}
