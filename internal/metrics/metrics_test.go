package metrics

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

func cover(n int, members ...[]int32) *Cover {
	return NewCover(n, members)
}

func TestNewCoverCleansInput(t *testing.T) {
	c := NewCover(10, [][]int32{{3, 1, 3, 2}, {}, {5}})
	if len(c.Members) != 2 {
		t.Fatalf("communities = %d, want 2 (empty dropped)", len(c.Members))
	}
	want := []int32{1, 2, 3}
	for i, v := range c.Members[0] {
		if v != want[i] {
			t.Fatalf("members[0] = %v, want %v", c.Members[0], want)
		}
	}
}

func TestF1Identical(t *testing.T) {
	c := cover(10, []int32{0, 1, 2}, []int32{3, 4, 5, 6}, []int32{7, 8, 9})
	if s := F1Score(c, c); math.Abs(s-1) > 1e-12 {
		t.Fatalf("F1(self) = %v, want 1", s)
	}
}

func TestF1Disjoint(t *testing.T) {
	a := cover(10, []int32{0, 1, 2})
	b := cover(10, []int32{7, 8, 9})
	if s := F1Score(a, b); s != 0 {
		t.Fatalf("F1(disjoint) = %v, want 0", s)
	}
}

func TestF1Partial(t *testing.T) {
	a := cover(10, []int32{0, 1, 2, 3})
	b := cover(10, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	// precision 1, recall 0.5 → F1 = 2/3 both directions.
	if s := F1Score(a, b); math.Abs(s-2.0/3.0) > 1e-12 {
		t.Fatalf("F1 = %v, want 2/3", s)
	}
}

func TestF1EmptyCover(t *testing.T) {
	a := cover(10, []int32{0, 1})
	empty := NewCover(10, nil)
	if F1Score(a, empty) != 0 || F1Score(empty, a) != 0 {
		t.Fatal("F1 with empty cover should be 0")
	}
}

func TestF1SplitCommunities(t *testing.T) {
	// Truth has one big community; detection split it in half. The split
	// must score strictly between 0 and 1.
	truth := cover(8, []int32{0, 1, 2, 3, 4, 5, 6, 7})
	split := cover(8, []int32{0, 1, 2, 3}, []int32{4, 5, 6, 7})
	s := F1Score(split, truth)
	if s <= 0.3 || s >= 0.9 {
		t.Fatalf("split F1 = %v, want in (0.3, 0.9)", s)
	}
}

func TestNMIIdentical(t *testing.T) {
	c := cover(20, []int32{0, 1, 2, 3, 4}, []int32{5, 6, 7, 8, 9, 10}, []int32{11, 12, 13, 14, 15, 16, 17, 18, 19})
	if s := NMI(c, c); math.Abs(s-1) > 1e-9 {
		t.Fatalf("NMI(self) = %v, want 1", s)
	}
}

func TestNMISymmetric(t *testing.T) {
	a := cover(30, []int32{0, 1, 2, 3, 4, 5}, []int32{6, 7, 8, 9, 10, 11, 12})
	b := cover(30, []int32{0, 1, 2, 3}, []int32{6, 7, 8, 9, 13, 14})
	if d := math.Abs(NMI(a, b) - NMI(b, a)); d > 1e-12 {
		t.Fatalf("NMI not symmetric, diff %v", d)
	}
}

func TestNMIRandomLow(t *testing.T) {
	rng := mathx.NewRNG(5)
	n := 200
	randomCover := func() *Cover {
		members := make([][]int32, 8)
		for v := 0; v < n; v++ {
			members[rng.Intn(8)] = append(members[rng.Intn(8)], int32(v))
		}
		return NewCover(n, members)
	}
	a, b := randomCover(), randomCover()
	good := NMI(a, a)
	indep := NMI(a, b)
	if indep >= good/2 {
		t.Fatalf("independent covers NMI %v not far below self NMI %v", indep, good)
	}
}

func TestNMIBetterDetectionScoresHigher(t *testing.T) {
	truth := cover(40,
		[]int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		[]int32{10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
		[]int32{20, 21, 22, 23, 24, 25, 26, 27, 28, 29},
		[]int32{30, 31, 32, 33, 34, 35, 36, 37, 38, 39})
	nearPerfect := cover(40,
		[]int32{0, 1, 2, 3, 4, 5, 6, 7, 8}, // one vertex dropped
		[]int32{10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
		[]int32{20, 21, 22, 23, 24, 25, 26, 27, 28, 29},
		[]int32{30, 31, 32, 33, 34, 35, 36, 37, 38, 39})
	coarse := cover(40,
		[]int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
		[]int32{20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39})
	sNear := NMI(nearPerfect, truth)
	sCoarse := NMI(coarse, truth)
	if sNear <= sCoarse {
		t.Fatalf("near-perfect NMI %v not above coarse NMI %v", sNear, sCoarse)
	}
	if sNear < 0.8 {
		t.Fatalf("near-perfect NMI = %v, want high", sNear)
	}
}

func TestNMIPanicsOnMismatchedN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched N did not panic")
		}
	}()
	NMI(cover(10, []int32{1}), cover(20, []int32{1}))
}

func TestFromState(t *testing.T) {
	cfg := core.DefaultConfig(4, 3)
	s, err := core.NewState(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Force known memberships: vertex a dominated by community a % 4.
	for a := 0; a < 6; a++ {
		phi := []float64{0.01, 0.01, 0.01, 0.01}
		phi[a%4] = 1
		s.SetPhiRow(a, phi)
	}
	c := FromState(s, 0.5)
	if len(c.Members) != 4 {
		t.Fatalf("communities = %d, want 4", len(c.Members))
	}
	for k, m := range c.Members {
		for _, v := range m {
			if int(v)%4 != k {
				t.Fatalf("vertex %d assigned to community %d", v, k)
			}
		}
	}
}

// TestEndToEndRecovery is the headline quality test: train the sampler on a
// planted graph and verify it recovers the planted communities far above
// chance.
func TestEndToEndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	const n, k = 300, 4
	g, gt, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k, MeanMembership: 1.15,
		SizeSkew: 0.3, TargetEdges: 3500, Background: 0.02, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(k, 17)
	cfg.Alpha = 1.0 / float64(k)
	s, err := core.NewSampler(cfg, g, nil, core.SamplerOptions{Threads: 4, NeighborCount: 30})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600)

	truth := NewCover(n, gt.Members)
	detected := FromState(s.State, 0)
	got := F1Score(detected, truth)

	// Chance baseline: score a shuffled version of the truth.
	rng := mathx.NewRNG(1)
	shuffled := make([][]int32, len(gt.Members))
	perm := make([]int, n)
	rng.Perm(perm)
	for i, m := range gt.Members {
		sh := make([]int32, len(m))
		for j, v := range m {
			sh[j] = int32(perm[v])
		}
		shuffled[i] = sh
	}
	chance := F1Score(NewCover(n, shuffled), truth)

	if got < chance+0.15 {
		t.Fatalf("recovery F1 = %.3f, chance = %.3f; model failed to learn structure", got, chance)
	}
}

func TestConvergenceDetector(t *testing.T) {
	d := NewConvergenceDetector(6, 0.01)
	// Steeply decreasing: never converged.
	for i := 0; i < 6; i++ {
		if d.Add(100 - 10*float64(i)) {
			t.Fatal("converged while steeply decreasing")
		}
	}
	// Flat: converges once the window fills with stable values.
	d2 := NewConvergenceDetector(6, 0.01)
	converged := false
	for i := 0; i < 10; i++ {
		converged = d2.Add(50.0)
	}
	if !converged {
		t.Fatal("flat series did not converge")
	}
}

func TestConvergenceDetectorMinWindow(t *testing.T) {
	d := NewConvergenceDetector(0, 0.1)
	d.Add(1)
	if !d.Add(1) {
		t.Fatal("window floor of 2 not applied")
	}
}

func TestLinkAUCPerfectAndChance(t *testing.T) {
	cfg := core.DefaultConfig(2, 1)
	s, err := core.NewState(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 0,1 in community 0; vertices 2,3 in community 1.
	s.SetPhiRow(0, []float64{10, 0.01})
	s.SetPhiRow(1, []float64{10, 0.01})
	s.SetPhiRow(2, []float64{0.01, 10})
	s.SetPhiRow(3, []float64{0.01, 10})
	s.Theta[0], s.Theta[1] = 1, 9 // β_0 = 0.9
	s.Theta[2], s.Theta[3] = 1, 9
	s.RefreshBeta()

	// Links inside communities, non-links across: perfectly separable.
	pairs := [][2]int32{{0, 1}, {2, 3}, {0, 2}, {1, 3}}
	linked := []bool{true, true, false, false}
	if auc := LinkAUC(s, pairs, linked, cfg.Delta); auc != 1 {
		t.Fatalf("separable AUC = %v, want 1", auc)
	}
	// Inverted labels: AUC 0.
	inverted := []bool{false, false, true, true}
	if auc := LinkAUC(s, pairs, inverted, cfg.Delta); auc != 0 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
	// Degenerate label sets score 0.5.
	if auc := LinkAUC(s, pairs, []bool{true, true, true, true}, cfg.Delta); auc != 0.5 {
		t.Fatalf("all-positive AUC = %v, want 0.5", auc)
	}
}

func TestLinkAUCTiesGiveHalfCredit(t *testing.T) {
	cfg := core.DefaultConfig(2, 2)
	s, err := core.NewState(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same pair used as one positive and one negative: identical scores,
	// midranks give AUC exactly 0.5.
	pairs := [][2]int32{{0, 1}, {0, 1}}
	linked := []bool{true, false}
	if auc := LinkAUC(s, pairs, linked, cfg.Delta); auc != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestLinkAUCOnTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	g, _, err := gen.Planted(gen.PlantedConfig{
		N: 400, NumCommunities: 4, MeanMembership: 1.15,
		SizeSkew: 0.3, TargetEdges: 4000, Background: 0.02, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := graphSplitHelper(g, 56)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4, 57)
	cfg.Alpha = 0.25
	cfg.StepA = 0.05
	cfg.StepB = 4096
	s, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 0, MinibatchPairs: 128})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]int32, held.Len())
	for i, e := range held.Pairs {
		pairs[i] = [2]int32{e.A, e.B}
	}
	before := LinkAUC(s.State, pairs, held.Linked, cfg.Delta)
	s.Run(2500)
	after := LinkAUC(s.State, pairs, held.Linked, cfg.Delta)
	if after < 0.72 {
		t.Fatalf("trained AUC = %.3f (was %.3f), want strong link prediction", after, before)
	}
	if after <= before {
		t.Fatalf("training did not improve AUC: %.3f -> %.3f", before, after)
	}
}

func graphSplitHelper(g *graph.Graph, seed uint64) (*graph.Graph, *graph.HeldOut, error) {
	return graph.Split(g, g.NumEdges()/20, mathx.NewRNG(seed))
}

func TestCoverIORoundTrip(t *testing.T) {
	c := NewCover(100, [][]int32{{5, 1, 9}, {42, 7}, {99}})
	var buf strings.Builder
	if err := WriteCover(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCover(strings.NewReader(buf.String()), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members) != len(c.Members) {
		t.Fatalf("communities = %d, want %d", len(got.Members), len(c.Members))
	}
	if F1Score(got, c) != 1 {
		t.Fatal("round trip not identical")
	}
}

func TestReadCoverRejectsBadInput(t *testing.T) {
	if _, err := ReadCover(strings.NewReader("1 2 zzz\n"), 10); err == nil {
		t.Fatal("non-numeric id accepted")
	}
	if _, err := ReadCover(strings.NewReader("1 2 50\n"), 10); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	c, err := ReadCover(strings.NewReader("# comment\n\n1 2\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Members) != 1 {
		t.Fatalf("communities = %d, want 1", len(c.Members))
	}
}

func TestCoverFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cover.txt")
	c := NewCover(20, [][]int32{{1, 2, 3}, {10, 11}})
	if err := WriteCoverFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCoverFile(path, 20)
	if err != nil {
		t.Fatal(err)
	}
	if NMI(got, c) != 1 {
		t.Fatal("file round trip lost information")
	}
}
