package metrics

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Cover file format: one community per line, space-separated vertex ids —
// the same layout SNAP uses for its ground-truth community files, so
// detected covers can be compared with external tooling.

// WriteCover writes the cover to w, one community per line.
func WriteCover(w io.Writer, c *Cover) error {
	bw := bufio.NewWriter(w)
	for _, members := range c.Members {
		for i, v := range members {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(v))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCover parses a cover over n vertices; out-of-range ids are an error.
// Blank lines and '#' comments are skipped.
func ReadCover(r io.Reader, n int) (*Cover, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var members [][]int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		community := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("metrics: line %d: vertex %d out of [0,%d)", lineNo, v, n)
			}
			community = append(community, int32(v))
		}
		members = append(members, community)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewCover(n, members), nil
}

// WriteCoverFile writes the cover to path.
func WriteCoverFile(path string, c *Cover) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCover(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCoverFile reads a cover over n vertices from path.
func ReadCoverFile(path string, n int) (*Cover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCover(f, n)
}
