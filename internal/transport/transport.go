// Package transport provides the message-passing fabric underneath the
// MPI-style collectives (internal/cluster) and the distributed key-value
// store (internal/dkv). Two interchangeable backends exist: an in-process
// fabric built on shared mailboxes (the default for the simulated-cluster
// experiments) and a TCP mesh for genuinely multi-process runs.
//
// The interface is deliberately minimal — tagged point-to-point messages with
// blocking receives — because that is all the algorithm's phase structure
// needs; everything else (barriers, reductions, one-sided reads) is layered
// on top.
package transport

import (
	"errors"
	"sync"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Conn is one rank's endpoint into the fabric.
type Conn interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send delivers payload to rank `to` under the given tag. The payload
	// is owned by the transport after the call (callers must not reuse it).
	// Sending to self is allowed.
	Send(to int, tag uint32, payload []byte) error
	// Recv blocks until a message from rank `from` with the given tag is
	// available and returns its payload.
	Recv(from int, tag uint32) ([]byte, error)
	// RecvAny blocks until a message with the given tag arrives from any
	// rank and returns the sender and payload.
	RecvAny(tag uint32) (from int, payload []byte, err error)
	// Close releases the endpoint. In-flight Recv calls return ErrClosed.
	Close() error
}

// mailKey identifies a (sender, tag) queue within a mailbox.
type mailKey struct {
	from int
	tag  uint32
}

// mailbox is a tag/sender-demultiplexed message queue shared by the inproc
// and TCP backends.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey][][]byte
	// anyOrder preserves global arrival order per tag for RecvAny.
	anyOrder map[uint32][]mailKey
	closed   bool
}

func newMailbox() *mailbox {
	m := &mailbox{
		queues:   make(map[mailKey][][]byte),
		anyOrder: make(map[uint32][]mailKey),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(from int, tag uint32, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := mailKey{from, tag}
	m.queues[k] = append(m.queues[k], payload)
	m.anyOrder[tag] = append(m.anyOrder[tag], k)
	m.cond.Broadcast()
	return nil
}

func (m *mailbox) get(from int, tag uint32) ([]byte, error) {
	k := mailKey{from, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			msg := q[0]
			m.popQueue(k, q)
			m.removeFromAnyOrder(k, tag)
			return msg, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		m.cond.Wait()
	}
}

// popQueue removes the head of queue k, releasing the payload reference and
// deleting drained queues entirely. Collective tags are never reused, so a
// retained empty slice (whose backing array still pins the last payload)
// would leak every message ever delivered — megabytes per iteration in the
// engine.
func (m *mailbox) popQueue(k mailKey, q [][]byte) {
	q[0] = nil
	q = q[1:]
	if len(q) == 0 {
		delete(m.queues, k)
		return
	}
	m.queues[k] = q
}

func (m *mailbox) getAny(tag uint32) (int, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if order := m.anyOrder[tag]; len(order) > 0 {
			k := order[0]
			if len(order) == 1 {
				delete(m.anyOrder, tag)
			} else {
				m.anyOrder[tag] = order[1:]
			}
			q := m.queues[k]
			msg := q[0]
			m.popQueue(k, q)
			return k.from, msg, nil
		}
		if m.closed {
			return 0, nil, ErrClosed
		}
		m.cond.Wait()
	}
}

// removeFromAnyOrder drops the oldest anyOrder entry matching k; called with
// the lock held after a targeted get consumed a message.
func (m *mailbox) removeFromAnyOrder(k mailKey, tag uint32) {
	order := m.anyOrder[tag]
	for i, e := range order {
		if e == k {
			order = append(order[:i], order[i+1:]...)
			if len(order) == 0 {
				delete(m.anyOrder, tag)
			} else {
				m.anyOrder[tag] = order
			}
			return
		}
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
