// Package transport provides the message-passing fabric underneath the
// MPI-style collectives (internal/cluster) and the distributed key-value
// store (internal/dkv). Two interchangeable backends exist: an in-process
// fabric built on shared mailboxes (the default for the simulated-cluster
// experiments) and a TCP mesh for genuinely multi-process runs.
//
// The interface is deliberately minimal — tagged point-to-point messages with
// blocking receives — because that is all the algorithm's phase structure
// needs; everything else (barriers, reductions, one-sided reads) is layered
// on top.
//
// # Failure semantics
//
// The paper's system assumes a healthy cluster; this fabric does not. Three
// mechanisms bound the time any rank can stay blocked once something goes
// wrong:
//
//   - Close releases an endpoint: in-flight receives return ErrClosed.
//   - SetDeadline bounds individual receives: past the deadline they return
//     ErrDeadlineExceeded instead of blocking.
//   - Poison aborts the whole fabric from one rank: a control message on the
//     reserved TagAbort wakes every blocked receive on every rank with a
//     typed *AbortError naming the poisoning rank and its cause. This is the
//     primitive the cluster-level abort protocol is built on.
//
// # Buffer ownership
//
// Send delivers a private copy of the payload to the receiver (the in-proc
// fabric copies on send; the TCP mesh serialises onto the wire). The
// contract is therefore:
//
//   - A sender may re-send or re-read the same slice after Send returns
//     (cluster.Bcast sends one buffer to every rank), but must not write to
//     it concurrently with the Send call itself.
//   - A receiver exclusively owns the slice Recv/RecvAny returns and may
//     modify it freely; it never aliases the sender's buffer or another
//     receiver's.
package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrDeadlineExceeded is returned by Recv/RecvAny once the endpoint's
// receive deadline (SetDeadline) has passed.
var ErrDeadlineExceeded = errors.New("transport: receive deadline exceeded")

// TagAbort is the reserved tag carrying abort control messages between
// ranks. Application protocols must keep their tags below it; Send rejects
// it explicitly.
const TagAbort = ^uint32(0)

// AbortError is the error delivered to every blocked or future receive on a
// poisoned endpoint. Rank is the rank that called Poison. Cause is the
// original error on ranks sharing the poisoner's address space (the in-proc
// fabric, and the poisoning rank itself on TCP); on remote TCP ranks only
// Msg — the rendered cause — crosses the wire and Cause is nil.
type AbortError struct {
	Rank  int
	Msg   string
	Cause error
}

// Error implements error.
func (e *AbortError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("transport: aborted by rank %d: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("transport: aborted by rank %d: %s", e.Rank, e.Msg)
}

// Unwrap exposes the cause (nil for remote TCP aborts).
func (e *AbortError) Unwrap() error { return e.Cause }

// AsAbort reports whether err wraps an *AbortError and returns it.
func AsAbort(err error) (*AbortError, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// Conn is one rank's endpoint into the fabric.
type Conn interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send delivers payload to rank `to` under the given tag. The receiver
	// gets a private copy (see the package-level buffer-ownership contract),
	// so the sender may reuse or re-send the slice after Send returns.
	// Sending to self is allowed. The tag must be below TagAbort.
	Send(to int, tag uint32, payload []byte) error
	// Recv blocks until a message from rank `from` with the given tag is
	// available and returns its payload, which the caller exclusively owns.
	Recv(from int, tag uint32) ([]byte, error)
	// RecvAny blocks until a message with the given tag arrives from any
	// rank and returns the sender and payload.
	RecvAny(tag uint32) (from int, payload []byte, err error)
	// SetDeadline bounds all current and future blocking receives: past t
	// they return ErrDeadlineExceeded. The zero time clears the deadline.
	// Sends are unaffected (they do not block on the fabric).
	SetDeadline(t time.Time) error
	// Poison aborts the fabric with the given cause: every blocked and
	// future Recv/RecvAny on every rank returns an *AbortError naming this
	// rank, locally immediately and remotely as soon as the abort control
	// message arrives. Poison is asynchronous and best-effort towards peers
	// (a dead peer cannot be woken, but cannot block others either) and is
	// safe to call more than once — the first cause wins on each endpoint.
	Poison(cause error)
	// Close releases the endpoint. In-flight Recv calls return ErrClosed.
	Close() error
}

// clonePayload copies an outgoing payload so the receiver never aliases the
// sender's buffer (nil stays nil, matching the wire round trip).
func clonePayload(p []byte) []byte { return bytes.Clone(p) }

// mailKey identifies a (sender, tag) queue within a mailbox.
type mailKey struct {
	from int
	tag  uint32
}

// mailbox is a tag/sender-demultiplexed message queue shared by the inproc
// and TCP backends.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey][][]byte
	// anyOrder preserves global arrival order per tag for RecvAny.
	anyOrder map[uint32][]mailKey
	closed   bool
	// cause, once set by poison, fails every receive (checked before queued
	// data so an abort surfaces in bounded time even under heavy traffic).
	cause error
	// deadline bounds blocking receives; timer wakes waiters when it fires.
	deadline time.Time
	timer    *time.Timer
}

func newMailbox() *mailbox {
	m := &mailbox{
		queues:   make(map[mailKey][][]byte),
		anyOrder: make(map[uint32][]mailKey),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(from int, tag uint32, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cause != nil {
		return m.cause
	}
	if m.closed {
		return ErrClosed
	}
	k := mailKey{from, tag}
	m.queues[k] = append(m.queues[k], payload)
	m.anyOrder[tag] = append(m.anyOrder[tag], k)
	m.cond.Broadcast()
	return nil
}

// expired reports whether the receive deadline has passed; caller holds mu.
func (m *mailbox) expired() bool {
	return !m.deadline.IsZero() && !time.Now().Before(m.deadline)
}

func (m *mailbox) get(from int, tag uint32) ([]byte, error) {
	k := mailKey{from, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.cause != nil {
			return nil, m.cause
		}
		if q := m.queues[k]; len(q) > 0 {
			msg := q[0]
			m.popQueue(k, q)
			m.removeFromAnyOrder(k, tag)
			return msg, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if m.expired() {
			return nil, ErrDeadlineExceeded
		}
		m.cond.Wait()
	}
}

// popQueue removes the head of queue k, releasing the payload reference and
// deleting drained queues entirely. Collective tags are never reused, so a
// retained empty slice (whose backing array still pins the last payload)
// would leak every message ever delivered — megabytes per iteration in the
// engine.
func (m *mailbox) popQueue(k mailKey, q [][]byte) {
	q[0] = nil
	q = q[1:]
	if len(q) == 0 {
		delete(m.queues, k)
		return
	}
	m.queues[k] = q
}

func (m *mailbox) getAny(tag uint32) (int, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.cause != nil {
			return 0, nil, m.cause
		}
		if order := m.anyOrder[tag]; len(order) > 0 {
			k := order[0]
			if len(order) == 1 {
				delete(m.anyOrder, tag)
			} else {
				m.anyOrder[tag] = order[1:]
			}
			q := m.queues[k]
			msg := q[0]
			m.popQueue(k, q)
			return k.from, msg, nil
		}
		if m.closed {
			return 0, nil, ErrClosed
		}
		if m.expired() {
			return 0, nil, ErrDeadlineExceeded
		}
		m.cond.Wait()
	}
}

// removeFromAnyOrder drops the oldest anyOrder entry matching k; called with
// the lock held after a targeted get consumed a message.
func (m *mailbox) removeFromAnyOrder(k mailKey, tag uint32) {
	order := m.anyOrder[tag]
	for i, e := range order {
		if e == k {
			order = append(order[:i], order[i+1:]...)
			if len(order) == 0 {
				delete(m.anyOrder, tag)
			} else {
				m.anyOrder[tag] = order
			}
			return
		}
	}
}

// poison installs the abort cause and wakes every waiter. The first cause
// wins; later poisons (including echoes of our own abort) are no-ops.
func (m *mailbox) poison(cause error) {
	m.mu.Lock()
	if m.cause == nil {
		m.cause = cause
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// setDeadline installs (or clears, with the zero time) the receive deadline
// and arms a timer so waiters re-evaluate when it fires.
func (m *mailbox) setDeadline(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadline = t
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	if !t.IsZero() {
		if d := time.Until(t); d > 0 {
			m.timer = time.AfterFunc(d, func() {
				m.mu.Lock()
				m.cond.Broadcast()
				m.mu.Unlock()
			})
		}
	}
	// Wake waiters so an already-passed (or cleared) deadline takes effect
	// immediately.
	m.cond.Broadcast()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}
