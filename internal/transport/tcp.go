package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP backend: a full mesh of TCP connections between ranks, with the same
// mailbox demultiplexing as the in-process fabric. Frame format on the wire:
//
//	[tag uint32][length uint32][payload ...]
//
// The sender's rank is established once per connection during the handshake,
// so frames do not repeat it.

// maxFrame bounds a single message; a π batch for K=16384 and 4096 rows is
// ~268 MB, so the limit is generous but still catches corrupt frames.
const maxFrame = 1 << 30

// meshSetupTimeout bounds DialMesh: dial retries and the accept loop both
// give up after this long, so a dead peer yields an error instead of a hang.
const meshSetupTimeout = 30 * time.Second

// dialRetry dials addr until it succeeds or the mesh setup deadline passes.
// The backoff starts at 10ms — a booting peer needs time to bind its
// listener, and hammering it at millisecond cadence only fills its backlog —
// and doubles up to 100ms. The error names the peer address, the attempt
// count, and the elapsed time against the deadline, so a dead peer is
// diagnosable from the failing rank's log alone.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	start := time.Now()
	delay := 10 * time.Millisecond
	attempts := 0
	for {
		attempts++
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("transport: dial %s: %d attempt(s) over %v (mesh setup deadline %v elapsed): %w",
				addr, attempts, time.Since(start).Round(time.Millisecond),
				meshSetupTimeout, err)
		}
		// Never sleep past the deadline: the final attempt should happen at
		// the deadline, not an exponential-backoff step after it.
		if remaining := time.Until(deadline); delay > remaining {
			delay = remaining
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// TCPConn is one rank's endpoint in a TCP mesh.
type TCPConn struct {
	rank  int
	size  int
	box   *mailbox
	peers []net.Conn // peers[r] is the connection to rank r (nil for self)
	sendM []sync.Mutex
	wg    sync.WaitGroup
	once  sync.Once
}

// DialMesh establishes a full mesh between `size` ranks. addrs[r] is the
// listen address of rank r (for example "127.0.0.1:9000"). Every rank calls
// DialMesh with the same address list and its own rank; the call returns
// once all pairwise connections are up.
//
// Connection direction: rank i dials rank j for i > j; the lower rank
// accepts. The handshake is the dialer's rank as a uint32.
func DialMesh(rank int, addrs []string) (*TCPConn, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", rank, size)
	}
	c := &TCPConn{
		rank:  rank,
		size:  size,
		box:   newMailbox(),
		peers: make([]net.Conn, size),
		sendM: make([]sync.Mutex, size),
	}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	defer ln.Close()
	// Bound the whole mesh setup: if a peer died, fail instead of hanging.
	// Dial retries and the accept loop share one deadline.
	deadline := time.Now().Add(meshSetupTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	// Accept connections from all higher ranks.
	accepted := make(chan error, 1)
	expect := size - rank - 1
	go func() {
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				accepted <- err
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				accepted <- fmt.Errorf("transport: handshake read: %w", err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= rank || peer >= size {
				accepted <- fmt.Errorf("transport: bad handshake rank %d", peer)
				return
			}
			c.peers[peer] = conn
		}
		accepted <- nil
	}()

	// Dial all lower ranks, retrying while their listeners come up — ranks
	// start concurrently, so early dials routinely beat the peer's Listen.
	for peer := 0; peer < rank; peer++ {
		conn, err := dialRetry(addrs[peer], deadline)
		if err != nil {
			return nil, fmt.Errorf("transport: dial rank %d: %w", peer, err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			return nil, fmt.Errorf("transport: handshake write: %w", err)
		}
		c.peers[peer] = conn
	}
	if err := <-accepted; err != nil {
		return nil, err
	}

	// Start one reader per peer.
	for peer, conn := range c.peers {
		if conn == nil {
			continue
		}
		c.wg.Add(1)
		go c.readLoop(peer, conn)
	}
	return c, nil
}

func (c *TCPConn) readLoop(peer int, conn net.Conn) {
	defer c.wg.Done()
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // connection closed; pending receives fail on Close
		}
		tag := binary.LittleEndian.Uint32(hdr[0:4])
		length := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxFrame {
			return
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if tag == TagAbort {
			// Abort control frame: the payload is the poisoning rank's
			// rendered cause. Poison the local mailbox so every blocked
			// receive fails, then keep reading (Close still drains us).
			c.box.poison(&AbortError{Rank: peer, Msg: string(payload)})
			continue
		}
		if err := c.box.put(peer, tag, payload); err != nil {
			return
		}
	}
}

// writeFrame sends one framed message to a peer, serialising writers per
// connection.
func (c *TCPConn) writeFrame(to int, tag uint32, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], tag)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	c.sendM[to].Lock()
	defer c.sendM[to].Unlock()
	conn := c.peers[to]
	if conn == nil {
		return ErrClosed
	}
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

// Rank implements Conn.
func (c *TCPConn) Rank() int { return c.rank }

// Size implements Conn.
func (c *TCPConn) Size() int { return c.size }

// Send implements Conn.
func (c *TCPConn) Send(to int, tag uint32, payload []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("transport: send to rank %d out of range [0,%d)", to, c.size)
	}
	if tag == TagAbort {
		return fmt.Errorf("transport: tag %#x is reserved for the abort protocol", tag)
	}
	if to == c.rank {
		// Self-delivery skips the wire; clone so the receiver owns its
		// slice, matching the remote path's serialisation copy.
		return c.box.put(c.rank, tag, clonePayload(payload))
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: payload %d exceeds frame limit", len(payload))
	}
	return c.writeFrame(to, tag, payload)
}

// SetDeadline implements Conn; it bounds receives on this rank's mailbox.
func (c *TCPConn) SetDeadline(t time.Time) error {
	c.box.setDeadline(t)
	return nil
}

// Poison implements Conn: an abort control frame is sent to every peer
// (best effort — a dead peer's frame is dropped, which is fine because a
// dead peer is not blocked on us) and the local mailbox is poisoned with
// the full cause.
func (c *TCPConn) Poison(cause error) {
	msg := []byte(cause.Error())
	for to := range c.peers {
		if to == c.rank {
			continue
		}
		_ = c.writeFrame(to, TagAbort, msg)
	}
	c.box.poison(&AbortError{Rank: c.rank, Msg: cause.Error(), Cause: cause})
}

// Recv implements Conn.
func (c *TCPConn) Recv(from int, tag uint32) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, fmt.Errorf("transport: recv from rank %d out of range [0,%d)", from, c.size)
	}
	return c.box.get(from, tag)
}

// RecvAny implements Conn.
func (c *TCPConn) RecvAny(tag uint32) (int, []byte, error) {
	return c.box.getAny(tag)
}

// Close implements Conn.
func (c *TCPConn) Close() error {
	c.once.Do(func() {
		for i := range c.peers {
			c.sendM[i].Lock()
			if conn := c.peers[i]; conn != nil {
				conn.Close()
				c.peers[i] = nil
			}
			c.sendM[i].Unlock()
		}
		c.box.close()
	})
	c.wg.Wait()
	return nil
}
