package transport

import "repro/internal/obs"

// instrumentedConn wraps a Conn and counts every frame and payload byte
// that crosses it (sends and receives) into the transport.* counters of a
// telemetry registry. It is transparent to the protocol: tags, payload
// ownership, deadlines, and poisoning all pass straight through.
type instrumentedConn struct {
	Conn
	msgsSent, bytesSent *obs.Counter
	msgsRecv, bytesRecv *obs.Counter
}

// Instrument wraps conn so its traffic is counted in reg. A nil registry
// returns conn unchanged.
func Instrument(conn Conn, reg *obs.Registry) Conn {
	if reg == nil {
		return conn
	}
	return &instrumentedConn{
		Conn:      conn,
		msgsSent:  reg.Counter(obs.CtrNetMsgsSent),
		bytesSent: reg.Counter(obs.CtrNetBytesSent),
		msgsRecv:  reg.Counter(obs.CtrNetMsgsRecv),
		bytesRecv: reg.Counter(obs.CtrNetBytesRecv),
	}
}

func (c *instrumentedConn) Send(to int, tag uint32, payload []byte) error {
	err := c.Conn.Send(to, tag, payload)
	if err == nil {
		c.msgsSent.Inc()
		c.bytesSent.Add(int64(len(payload)))
	}
	return err
}

func (c *instrumentedConn) Recv(from int, tag uint32) ([]byte, error) {
	payload, err := c.Conn.Recv(from, tag)
	if err == nil {
		c.msgsRecv.Inc()
		c.bytesRecv.Add(int64(len(payload)))
	}
	return payload, err
}

func (c *instrumentedConn) RecvAny(tag uint32) (int, []byte, error) {
	from, payload, err := c.Conn.RecvAny(tag)
	if err == nil {
		c.msgsRecv.Inc()
		c.bytesRecv.Add(int64(len(payload)))
	}
	return from, payload, err
}
