package transport

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// PhaseLabeler is implemented by instrumented conns: SetPhase names the
// engine phase subsequent blocking receives are attributed to, feeding the
// transport.wait.<phase> histograms that break straggler wait down per
// collective tag. cluster.Comm forwards its SetPhase here.
type PhaseLabeler interface {
	SetPhase(name string)
}

// instrumentedConn wraps a Conn and counts every frame and payload byte
// that crosses it (sends and receives) into the transport.* counters of a
// telemetry registry — both the per-rank aggregates and the per-peer
// transport.peer.<r>.* breakdown, whose row/column sums reconstruct the
// aggregates. Targeted receives additionally time how long the caller was
// blocked and charge it to the sending peer (transport.peer.<r>.recv_wait_ns)
// and, when a phase label is set, to the per-phase wait histogram. RecvAny
// is deliberately excluded from wait accounting: the DKV server idles in
// RecvAny waiting for requests by design, and that idle time says nothing
// about stragglers. It is transparent to the protocol: tags, payload
// ownership, deadlines, and poisoning all pass straight through.
type instrumentedConn struct {
	Conn
	msgsSent, bytesSent *obs.Counter
	msgsRecv, bytesRecv *obs.Counter
	recvAnyIdleNS       *obs.Counter
	peers               []peerCounters // indexed by peer rank, self included
	reg                 *obs.Registry
	phase               atomic.Pointer[phaseLabel]
}

// peerCounters is one row slot of the per-peer traffic matrix.
type peerCounters struct {
	msgsSent, bytesSent *obs.Counter
	msgsRecv, bytesRecv *obs.Counter
	recvWaitNS          *obs.Counter
}

// phaseLabel caches the phase's wait histogram so the per-receive cost of
// attribution is one atomic load, not a registry lookup.
type phaseLabel struct {
	name string
	wait *obs.Histogram
}

// Instrument wraps conn so its traffic is counted in reg. A nil registry
// returns conn unchanged.
func Instrument(conn Conn, reg *obs.Registry) Conn {
	if reg == nil {
		return conn
	}
	c := &instrumentedConn{
		Conn:          conn,
		msgsSent:      reg.Counter(obs.CtrNetMsgsSent),
		bytesSent:     reg.Counter(obs.CtrNetBytesSent),
		msgsRecv:      reg.Counter(obs.CtrNetMsgsRecv),
		bytesRecv:     reg.Counter(obs.CtrNetBytesRecv),
		recvAnyIdleNS: reg.Counter(obs.CtrNetRecvAnyIdleNS),
		peers:         make([]peerCounters, conn.Size()),
		reg:           reg,
	}
	for p := range c.peers {
		c.peers[p] = peerCounters{
			msgsSent:   reg.Counter(obs.PeerCounterName(p, obs.PeerMsgsSent)),
			bytesSent:  reg.Counter(obs.PeerCounterName(p, obs.PeerBytesSent)),
			msgsRecv:   reg.Counter(obs.PeerCounterName(p, obs.PeerMsgsRecv)),
			bytesRecv:  reg.Counter(obs.PeerCounterName(p, obs.PeerBytesRecv)),
			recvWaitNS: reg.Counter(obs.PeerCounterName(p, obs.PeerRecvWaitNS)),
		}
	}
	return c
}

// SetPhase implements PhaseLabeler. The histogram handle is resolved once
// per call, so receives on the hot path pay a single atomic pointer load.
func (c *instrumentedConn) SetPhase(name string) {
	if name == "" {
		c.phase.Store(nil)
		return
	}
	c.phase.Store(&phaseLabel{name: name, wait: c.reg.Histogram(obs.PhaseWaitName(name))})
}

func (c *instrumentedConn) Send(to int, tag uint32, payload []byte) error {
	err := c.Conn.Send(to, tag, payload)
	if err == nil {
		c.msgsSent.Inc()
		c.bytesSent.Add(int64(len(payload)))
		if to >= 0 && to < len(c.peers) {
			c.peers[to].msgsSent.Inc()
			c.peers[to].bytesSent.Add(int64(len(payload)))
		}
	}
	return err
}

func (c *instrumentedConn) Recv(from int, tag uint32) ([]byte, error) {
	start := time.Now()
	payload, err := c.Conn.Recv(from, tag)
	if err == nil {
		wait := time.Since(start)
		c.msgsRecv.Inc()
		c.bytesRecv.Add(int64(len(payload)))
		if from >= 0 && from < len(c.peers) {
			c.peers[from].msgsRecv.Inc()
			c.peers[from].bytesRecv.Add(int64(len(payload)))
			c.peers[from].recvWaitNS.Add(int64(wait))
		}
		if pl := c.phase.Load(); pl != nil {
			pl.wait.Observe(wait)
		}
	}
	return payload, err
}

func (c *instrumentedConn) RecvAny(tag uint32) (int, []byte, error) {
	start := time.Now()
	from, payload, err := c.Conn.RecvAny(tag)
	if err == nil {
		// Idle time, not wait attribution: the DKV server parked in RecvAny
		// is healthy. Tracked separately so serve-loop utilisation
		// (1 - idle/elapsed) is computable from /metrics.
		c.recvAnyIdleNS.Add(int64(time.Since(start)))
		c.msgsRecv.Inc()
		c.bytesRecv.Add(int64(len(payload)))
		if from >= 0 && from < len(c.peers) {
			c.peers[from].msgsRecv.Inc()
			c.peers[from].bytesRecv.Add(int64(len(payload)))
		}
	}
	return from, payload, err
}
