package transport

import "time"

// FaultConn wraps a Conn with deterministic fault injection for the failure
// test suites: messages can be dropped, delayed or failed on the send side
// without the receiver's cooperation. The zero hooks make it a transparent
// passthrough.
//
// Hooks must be installed before the conn is shared between goroutines and
// are read-only afterwards; they may themselves be stateful (e.g. count
// calls) but must then be internally synchronised, since Send can be called
// concurrently.
type FaultConn struct {
	Conn

	// DropSend, when non-nil and returning true, silently discards the
	// message — it is never delivered, as if the wire lost it.
	DropSend func(to int, tag uint32) bool
	// DelaySend, when non-nil, sleeps the returned duration before the
	// message is handed to the underlying transport.
	DelaySend func(to int, tag uint32) time.Duration
	// FailSend, when non-nil and returning a non-nil error, fails the Send
	// call with that error — as if the local NIC rejected it.
	FailSend func(to int, tag uint32) error
}

// Send implements Conn with the configured faults applied in order:
// fail, drop, delay, then the real send.
func (f *FaultConn) Send(to int, tag uint32, payload []byte) error {
	if f.FailSend != nil {
		if err := f.FailSend(to, tag); err != nil {
			return err
		}
	}
	if f.DropSend != nil && f.DropSend(to, tag) {
		return nil
	}
	if f.DelaySend != nil {
		if d := f.DelaySend(to, tag); d > 0 {
			time.Sleep(d)
		}
	}
	return f.Conn.Send(to, tag, payload)
}
