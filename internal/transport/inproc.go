package transport

import (
	"fmt"
	"time"
)

// Fabric is an in-process transport connecting `size` ranks that live as
// goroutines in one address space. It stands in for the paper's InfiniBand
// interconnect in the simulated-cluster experiments: message semantics are
// identical to the TCP backend, only the wire is a mailbox.
type Fabric struct {
	boxes []*mailbox
}

// NewFabric creates an in-process fabric for size ranks.
func NewFabric(size int) (*Fabric, error) {
	if size < 1 {
		return nil, fmt.Errorf("transport: fabric size %d must be positive", size)
	}
	f := &Fabric{boxes: make([]*mailbox, size)}
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	return f, nil
}

// Endpoint returns rank r's Conn.
func (f *Fabric) Endpoint(r int) Conn {
	if r < 0 || r >= len(f.boxes) {
		panic(fmt.Sprintf("transport: rank %d out of range [0,%d)", r, len(f.boxes)))
	}
	return &inprocConn{fabric: f, rank: r}
}

// Endpoints returns all rank endpoints, index = rank.
func (f *Fabric) Endpoints() []Conn {
	out := make([]Conn, len(f.boxes))
	for i := range out {
		out[i] = f.Endpoint(i)
	}
	return out
}

// Close shuts down every mailbox, releasing blocked receivers.
func (f *Fabric) Close() {
	for _, b := range f.boxes {
		b.close()
	}
}

type inprocConn struct {
	fabric *Fabric
	rank   int
}

func (c *inprocConn) Rank() int { return c.rank }
func (c *inprocConn) Size() int { return len(c.fabric.boxes) }

func (c *inprocConn) Send(to int, tag uint32, payload []byte) error {
	if to < 0 || to >= c.Size() {
		return fmt.Errorf("transport: send to rank %d out of range [0,%d)", to, c.Size())
	}
	if tag == TagAbort {
		return fmt.Errorf("transport: tag %#x is reserved for the abort protocol", tag)
	}
	// Copy on send: the receiver owns its slice, so a broadcast of one
	// buffer to many ranks never aliases (see the package ownership
	// contract).
	return c.fabric.boxes[to].put(c.rank, tag, clonePayload(payload))
}

func (c *inprocConn) Recv(from int, tag uint32) ([]byte, error) {
	if from < 0 || from >= c.Size() {
		return nil, fmt.Errorf("transport: recv from rank %d out of range [0,%d)", from, c.Size())
	}
	return c.fabric.boxes[c.rank].get(from, tag)
}

func (c *inprocConn) RecvAny(tag uint32) (int, []byte, error) {
	return c.fabric.boxes[c.rank].getAny(tag)
}

// SetDeadline implements Conn; it bounds receives on this rank's inbox.
func (c *inprocConn) SetDeadline(t time.Time) error {
	c.fabric.boxes[c.rank].setDeadline(t)
	return nil
}

// Poison implements Conn. The fabric shares one address space, so the abort
// reaches every rank's mailbox synchronously — the in-proc analogue of the
// TCP backend's abort control frames.
func (c *inprocConn) Poison(cause error) {
	ae := &AbortError{Rank: c.rank, Msg: cause.Error(), Cause: cause}
	for _, b := range c.fabric.boxes {
		b.poison(ae)
	}
}

func (c *inprocConn) Close() error {
	// Closing one endpoint closes its inbox only; peers learn via ErrClosed
	// on sends to this rank.
	c.fabric.boxes[c.rank].close()
	return nil
}
