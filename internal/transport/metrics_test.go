package transport

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestInstrumentPerPeerCounters pins the row-sum invariant: each rank's
// per-peer transport.peer.<p>.* counters must sum to its aggregate
// transport.* counters, and targeted receives charge their blocking time to
// the sending peer.
func TestInstrumentPerPeerCounters(t *testing.T) {
	f, err := NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reg := obs.NewRegistry()
	c0 := Instrument(f.Endpoint(0), reg)

	// Two sends out, two targeted receives in (one per peer), one RecvAny.
	if err := c0.Send(1, 7, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := c0.Send(2, 7, []byte("efghij")); err != nil {
		t.Fatal(err)
	}
	for peer, payload := range map[int]string{1: "xy", 2: "zw0"} {
		if err := f.Endpoint(peer).Send(0, 9, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		got, err := c0.Recv(peer, 9)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Fatalf("recv from %d = %q, want %q", peer, got, payload)
		}
	}
	if err := f.Endpoint(1).Send(0, 11, []byte("any")); err != nil {
		t.Fatal(err)
	}
	if from, _, err := c0.RecvAny(11); err != nil || from != 1 {
		t.Fatalf("RecvAny = (%d, %v)", from, err)
	}

	snap := reg.Snapshot()
	sums := map[string]int64{}
	var waitTotal int64
	for name, v := range snap.Counters {
		peer, kind, ok := obs.ParsePeerCounter(name)
		if !ok {
			continue
		}
		if peer < 0 || peer > 2 {
			t.Fatalf("counter %s names peer outside the fabric", name)
		}
		if kind == obs.PeerRecvWaitNS {
			waitTotal += v
			continue
		}
		sums[kind] += v
	}
	for kind, aggregate := range map[string]string{
		obs.PeerMsgsSent:  obs.CtrNetMsgsSent,
		obs.PeerBytesSent: obs.CtrNetBytesSent,
		obs.PeerMsgsRecv:  obs.CtrNetMsgsRecv,
		obs.PeerBytesRecv: obs.CtrNetBytesRecv,
	} {
		if sums[kind] != snap.Counters[aggregate] {
			t.Errorf("per-peer %s sums to %d; aggregate %s = %d",
				kind, sums[kind], aggregate, snap.Counters[aggregate])
		}
	}
	if snap.Counters[obs.CtrNetMsgsSent] != 2 || snap.Counters[obs.CtrNetMsgsRecv] != 3 {
		t.Fatalf("aggregates = %d sent / %d recv, want 2/3", snap.Counters[obs.CtrNetMsgsSent], snap.Counters[obs.CtrNetMsgsRecv])
	}
	if snap.Counters[obs.PeerCounterName(1, obs.PeerBytesSent)] != 4 ||
		snap.Counters[obs.PeerCounterName(2, obs.PeerBytesSent)] != 6 {
		t.Fatalf("per-peer bytes_sent misattributed: %v", snap.Counters)
	}
	if waitTotal <= 0 {
		t.Fatal("targeted receives recorded no recv_wait_ns")
	}
	// RecvAny is excluded from wait accounting (the DKV server idles there by
	// design) but still counted as traffic.
	if snap.Counters[obs.PeerCounterName(1, obs.PeerMsgsRecv)] != 2 {
		t.Fatalf("peer 1 msgs_recv = %d, want 2 (one targeted + one RecvAny)",
			snap.Counters[obs.PeerCounterName(1, obs.PeerMsgsRecv)])
	}
}

// TestInstrumentRecvAnyNoWait: with ONLY RecvAny traffic, no recv_wait_ns
// counter may advance — server idle time is not straggler signal.
func TestInstrumentRecvAnyNoWait(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reg := obs.NewRegistry()
	c0 := Instrument(f.Endpoint(0), reg)
	if err := f.Endpoint(1).Send(0, 5, []byte("req")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c0.RecvAny(5); err != nil {
		t.Fatal(err)
	}
	for name, v := range reg.Snapshot().Counters {
		if _, kind, ok := obs.ParsePeerCounter(name); ok && kind == obs.PeerRecvWaitNS && v != 0 {
			t.Fatalf("RecvAny advanced %s to %d", name, v)
		}
	}
}

// TestInstrumentPhaseWait: SetPhase routes blocking-receive time into the
// transport.wait.<phase> histogram; clearing the phase stops attribution.
func TestInstrumentPhaseWait(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reg := obs.NewRegistry()
	c0 := Instrument(f.Endpoint(0), reg)
	labeler, ok := c0.(PhaseLabeler)
	if !ok {
		t.Fatal("instrumented conn does not implement PhaseLabeler")
	}

	labeler.SetPhase("update_phi")
	if err := f.Endpoint(1).Send(0, 3, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Recv(1, 3); err != nil {
		t.Fatal(err)
	}
	labeler.SetPhase("")
	if err := f.Endpoint(1).Send(0, 4, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Recv(1, 4); err != nil {
		t.Fatal(err)
	}

	h, ok := reg.Snapshot().Histograms[obs.PhaseWaitName("update_phi")]
	if !ok {
		t.Fatal("no transport.wait.update_phi histogram")
	}
	if h.Count != 1 {
		t.Fatalf("phase wait count = %d, want 1 (second recv ran with the label cleared)", h.Count)
	}
}

// TestInstrumentNilRegistry: a nil registry returns the conn unchanged — the
// zero-cost telemetry-off path.
func TestInstrumentNilRegistry(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	conn := f.Endpoint(0)
	if got := Instrument(conn, nil); got != conn {
		t.Fatal("Instrument(conn, nil) wrapped the conn")
	}
}

// TestDialRetryErrorContext: a dial that exhausts the mesh setup deadline
// must name the peer address, the attempt count, and the deadline — enough
// to diagnose a dead peer from this rank's log alone.
func TestDialRetryErrorContext(t *testing.T) {
	// Reserve an address nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = dialRetry(addr, start.Add(150*time.Millisecond))
	if err == nil {
		t.Fatal("dialRetry succeeded against a closed port")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dialRetry took %v; must respect the deadline", elapsed)
	}
	msg := err.Error()
	for _, want := range []string{addr, "attempt", "deadline"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}
