package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// connFactory abstracts over backends so every test runs against both.
type connFactory func(t *testing.T, size int) []Conn

func inprocFactory(t *testing.T, size int) []Conn {
	t.Helper()
	f, err := NewFabric(size)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f.Endpoints()
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

func tcpFactory(t *testing.T, size int) []Conn {
	t.Helper()
	addrs := freeAddrs(t, size)
	conns := make([]Conn, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := DialMesh(r, addrs)
			conns[r], errs[r] = c, err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
	})
	return conns
}

func backends() map[string]connFactory {
	return map[string]connFactory{"inproc": inprocFactory, "tcp": tcpFactory}
}

func TestPointToPoint(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 3)
			go func() {
				conns[0].Send(1, 7, []byte("hello"))
				conns[2].Send(1, 7, []byte("world"))
			}()
			m1, err := conns[1].Recv(0, 7)
			if err != nil || string(m1) != "hello" {
				t.Fatalf("recv from 0: %q, %v", m1, err)
			}
			m2, err := conns[1].Recv(2, 7)
			if err != nil || string(m2) != "world" {
				t.Fatalf("recv from 2: %q, %v", m2, err)
			}
		})
	}
}

func TestTagDemux(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := conns[0].Send(1, 2, []byte("second")); err != nil {
				t.Fatal(err)
			}
			if err := conns[0].Send(1, 1, []byte("first")); err != nil {
				t.Fatal(err)
			}
			m, err := conns[1].Recv(0, 1)
			if err != nil || string(m) != "first" {
				t.Fatalf("tag 1: %q, %v", m, err)
			}
			m, err = conns[1].Recv(0, 2)
			if err != nil || string(m) != "second" {
				t.Fatalf("tag 2: %q, %v", m, err)
			}
		})
	}
}

func TestFIFOPerSenderTag(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			const n = 200
			go func() {
				for i := 0; i < n; i++ {
					conns[0].Send(1, 5, []byte{byte(i)})
				}
			}()
			for i := 0; i < n; i++ {
				m, err := conns[1].Recv(0, 5)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if m[0] != byte(i) {
					t.Errorf("message %d out of order: got %d", i, m[0])
					return
				}
			}
		})
	}
}

func TestRecvAny(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 4)
			for r := 1; r < 4; r++ {
				if err := conns[r].Send(0, 9, []byte{byte(r)}); err != nil {
					t.Fatal(err)
				}
			}
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				from, m, err := conns[0].RecvAny(9)
				if err != nil {
					t.Fatal(err)
				}
				if int(m[0]) != from {
					t.Fatalf("payload %d does not match sender %d", m[0], from)
				}
				seen[from] = true
			}
			if len(seen) != 3 {
				t.Fatalf("RecvAny saw %d senders, want 3", len(seen))
			}
		})
	}
}

func TestRecvAnyInterleavedWithTargetedRecv(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 3)
			if err := conns[1].Send(0, 3, []byte("from1")); err != nil {
				t.Fatal(err)
			}
			if err := conns[2].Send(0, 3, []byte("from2")); err != nil {
				t.Fatal(err)
			}
			// Targeted recv consumes rank 2's message...
			m, err := conns[0].Recv(2, 3)
			if err != nil || string(m) != "from2" {
				t.Fatalf("targeted recv: %q, %v", m, err)
			}
			// ...so RecvAny must deliver rank 1's, not a stale entry.
			from, m, err := conns[0].RecvAny(3)
			if err != nil || from != 1 || string(m) != "from1" {
				t.Fatalf("RecvAny: from=%d %q, %v", from, m, err)
			}
		})
	}
}

func TestSendToSelf(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			if err := conns[0].Send(0, 1, []byte("loop")); err != nil {
				t.Fatal(err)
			}
			m, err := conns[0].Recv(0, 1)
			if err != nil || string(m) != "loop" {
				t.Fatalf("self message: %q, %v", m, err)
			}
		})
	}
}

func TestRankSizeAccessors(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 3)
			for r, c := range conns {
				if c.Rank() != r || c.Size() != 3 {
					t.Fatalf("rank/size = %d/%d, want %d/3", c.Rank(), c.Size(), r)
				}
			}
		})
	}
}

func TestSendOutOfRange(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			if err := conns[0].Send(5, 1, nil); err == nil {
				t.Fatal("send to rank 5 accepted")
			}
			if _, err := conns[0].Recv(-1, 1); err == nil {
				t.Fatal("recv from rank -1 accepted")
			}
		})
	}
}

func TestCloseReleasesBlockedRecv(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			done := make(chan error, 1)
			go func() {
				_, err := conns[0].Recv(1, 42)
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			conns[0].Close()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("blocked Recv returned nil after Close")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv still blocked after Close")
			}
		})
	}
}

func TestLargePayload(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			payload := make([]byte, 1<<20)
			for i := range payload {
				payload[i] = byte(i * 31)
			}
			want := append([]byte(nil), payload...)
			go conns[0].Send(1, 1, payload)
			m, err := conns[1].Recv(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(m) != len(want) {
				t.Fatalf("length %d, want %d", len(m), len(want))
			}
			for i := range m {
				if m[i] != want[i] {
					t.Fatalf("payload corrupted at %d", i)
				}
			}
		})
	}
}

func TestManyToOneStress(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			const size = 5
			const msgs = 100
			conns := factory(t, size)
			var wg sync.WaitGroup
			for r := 1; r < size; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < msgs; i++ {
						if err := conns[r].Send(0, 8, []byte(fmt.Sprintf("%d:%d", r, i))); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(r)
			}
			counts := map[int]int{}
			for i := 0; i < (size-1)*msgs; i++ {
				from, _, err := conns[0].RecvAny(8)
				if err != nil {
					t.Fatal(err)
				}
				counts[from]++
			}
			wg.Wait()
			for r := 1; r < size; r++ {
				if counts[r] != msgs {
					t.Fatalf("rank %d delivered %d messages, want %d", r, counts[r], msgs)
				}
			}
		})
	}
}

func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric(0); err == nil {
		t.Fatal("zero-size fabric accepted")
	}
	f, _ := NewFabric(2)
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range endpoint did not panic")
		}
	}()
	f.Endpoint(5)
}

func TestDialMeshBadRank(t *testing.T) {
	if _, err := DialMesh(3, []string{"127.0.0.1:0"}); err == nil {
		t.Fatal("bad rank accepted")
	}
}

// TestMailboxDoesNotAccumulate is the regression test for the queue-pinning
// leak: collective tags never repeat, so drained queues must be deleted and
// consumed payloads released, or every message ever delivered stays live.
func TestMailboxDoesNotAccumulate(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, b := f.Endpoint(0), f.Endpoint(1)
	for i := 0; i < 10000; i++ {
		tag := uint32(i) // unique per message, like collective sequencing
		if err := a.Send(1, tag, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(0, tag); err != nil {
			t.Fatal(err)
		}
	}
	box := f.boxes[1]
	box.mu.Lock()
	defer box.mu.Unlock()
	if len(box.queues) != 0 {
		t.Fatalf("mailbox retains %d drained queues", len(box.queues))
	}
	if len(box.anyOrder) != 0 {
		t.Fatalf("mailbox retains %d anyOrder lists", len(box.anyOrder))
	}
}

// TestMailboxReleasesPayloadsViaRecvAny covers the same property on the
// RecvAny path (the DKV server's receive loop).
func TestMailboxReleasesPayloadsViaRecvAny(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 5000; i++ {
		if err := f.Endpoint(0).Send(1, 7, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Endpoint(1).RecvAny(7); err != nil {
			t.Fatal(err)
		}
	}
	box := f.boxes[1]
	box.mu.Lock()
	defer box.mu.Unlock()
	if len(box.queues) != 0 || len(box.anyOrder) != 0 {
		t.Fatalf("RecvAny path retains state: %d queues, %d order lists",
			len(box.queues), len(box.anyOrder))
	}
}
