package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// waitErr runs fn in a goroutine and returns its error, failing the test if
// fn is still blocked after the timeout — the property every failure test
// here is really about.
func waitErr(t *testing.T, what string, timeout time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		t.Fatalf("%s still blocked after %v", what, timeout)
		return nil
	}
}

// TestPoisonWakesBlockedReceivers: Poison on one rank must release every
// peer blocked in Recv/RecvAny with an AbortError naming the poisoner —
// the primitive the engine's no-deadlock guarantee rests on.
func TestPoisonWakesBlockedReceivers(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 3)
			recvDone := make(chan error, 1)
			anyDone := make(chan error, 1)
			go func() {
				_, err := conns[0].Recv(2, 77)
				recvDone <- err
			}()
			go func() {
				_, _, err := conns[2].RecvAny(78)
				anyDone <- err
			}()
			time.Sleep(20 * time.Millisecond) // let both receivers block
			cause := errors.New("injected failure")
			conns[1].Poison(cause)
			for i, ch := range []chan error{recvDone, anyDone} {
				select {
				case err := <-ch:
					ae, ok := AsAbort(err)
					if !ok {
						t.Fatalf("receiver %d: error %v is not an AbortError", i, err)
					}
					if ae.Rank != 1 {
						t.Fatalf("receiver %d: abort names rank %d, want 1", i, ae.Rank)
					}
					if ae.Msg != cause.Error() {
						t.Fatalf("receiver %d: abort message %q, want %q", i, ae.Msg, cause.Error())
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("receiver %d still blocked after Poison", i)
				}
			}
			// The poisoning rank's own receives fail too, with the cause
			// preserved for unwrapping.
			err := waitErr(t, "poisoner recv", 5*time.Second, func() error {
				_, err := conns[1].Recv(0, 79)
				return err
			})
			if !errors.Is(err, cause) && name == "inproc" {
				t.Fatalf("poisoner recv error %v does not wrap the cause", err)
			}
			if ae, ok := AsAbort(err); !ok || ae.Rank != 1 {
				t.Fatalf("poisoner recv error %v is not its own AbortError", err)
			}
		})
	}
}

// TestPoisonFailsLaterReceivesAndSends: poisoning is sticky — operations
// issued after the abort fail immediately rather than blocking.
func TestPoisonFailsLaterReceivesAndSends(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			conns[0].Poison(errors.New("boom"))
			err := waitErr(t, "recv after poison", 2*time.Second, func() error {
				_, err := conns[1].Recv(0, 5)
				return err
			})
			if _, ok := AsAbort(err); !ok {
				t.Fatalf("recv after poison: %v, want AbortError", err)
			}
			// A queued message does not mask the abort: delivery to a
			// poisoned inbox fails, and receives surface the abort first.
			if err := conns[1].Send(0, 6, []byte("x")); err == nil && name == "inproc" {
				t.Fatal("send into poisoned inbox succeeded")
			}
		})
	}
}

// TestSetDeadline: a blocked receive must return ErrDeadlineExceeded once
// the deadline passes, and clearing the deadline restores normal blocking.
func TestSetDeadline(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			if err := conns[0].SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			err := waitErr(t, "recv with deadline", 5*time.Second, func() error {
				_, err := conns[0].Recv(1, 11)
				return err
			})
			if !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("recv error %v, want ErrDeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Fatalf("deadline took %v to fire", elapsed)
			}
			// An expired deadline also fails RecvAny.
			err = waitErr(t, "recvany with deadline", 5*time.Second, func() error {
				_, _, err := conns[0].RecvAny(12)
				return err
			})
			if !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("recvany error %v, want ErrDeadlineExceeded", err)
			}
			// Clearing the deadline makes the endpoint usable again.
			if err := conns[0].SetDeadline(time.Time{}); err != nil {
				t.Fatal(err)
			}
			if err := conns[1].Send(0, 13, []byte("late")); err != nil {
				t.Fatal(err)
			}
			m, err := conns[0].Recv(1, 13)
			if err != nil || string(m) != "late" {
				t.Fatalf("recv after clearing deadline: %q, %v", m, err)
			}
		})
	}
}

// TestDeadlineDoesNotDropQueuedMessages: a message that is already queued
// is still delivered even if the deadline has passed — deadlines bound
// waiting, not data.
func TestDeadlineDoesNotDropQueuedMessages(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, b := f.Endpoint(0), f.Endpoint(1)
	if err := a.Send(1, 3, []byte("queued")); err != nil {
		t.Fatal(err)
	}
	b.SetDeadline(time.Now().Add(-time.Second))
	m, err := b.Recv(0, 3)
	if err != nil || string(m) != "queued" {
		t.Fatalf("queued message after deadline: %q, %v", m, err)
	}
	// With the queue drained, the expired deadline now applies.
	if _, err := b.Recv(0, 3); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("drained recv error %v, want ErrDeadlineExceeded", err)
	}
}

// TestSendDoesNotAliasBuffers enforces the ownership contract: sending one
// buffer to several ranks (exactly what cluster.Bcast does) must deliver
// private copies — a receiver mutating its slice must not corrupt the
// sender's buffer or a sibling receiver's copy.
func TestSendDoesNotAliasBuffers(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 3)
			data := []byte("shared broadcast payload")
			orig := append([]byte(nil), data...)
			for to := 1; to < 3; to++ {
				if err := conns[0].Send(to, 21, data); err != nil {
					t.Fatal(err)
				}
			}
			m1, err := conns[1].Recv(0, 21)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := conns[2].Recv(0, 21)
			if err != nil {
				t.Fatal(err)
			}
			for i := range m1 {
				m1[i] = 'X' // receiver 1 scribbles over its copy
			}
			if string(m2) != string(orig) {
				t.Fatalf("receiver 2's buffer corrupted by receiver 1: %q", m2)
			}
			if string(data) != string(orig) {
				t.Fatalf("sender's buffer corrupted by receiver 1: %q", data)
			}
			// Self-delivery must not alias either.
			if err := conns[0].Send(0, 22, data); err != nil {
				t.Fatal(err)
			}
			self, err := conns[0].Recv(0, 22)
			if err != nil {
				t.Fatal(err)
			}
			self[0] = 'Y'
			if string(data) != string(orig) {
				t.Fatalf("sender's buffer aliases self-delivered message: %q", data)
			}
		})
	}
}

// TestAbortTagReserved: application sends on the abort control tag must be
// rejected, or a user message could poison the whole fabric.
func TestAbortTagReserved(t *testing.T) {
	for name, factory := range backends() {
		t.Run(name, func(t *testing.T) {
			conns := factory(t, 2)
			if err := conns[0].Send(1, TagAbort, []byte("nope")); err == nil {
				t.Fatal("send on TagAbort accepted")
			}
		})
	}
}

// TestFaultConnDropDelayFail exercises the injection wrapper the failure
// suites build on.
func TestFaultConnDropDelayFail(t *testing.T) {
	f, err := NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var dropped atomic.Int32
	fc := &FaultConn{
		Conn: f.Endpoint(0),
		DropSend: func(to int, tag uint32) bool {
			if tag == 100 {
				dropped.Add(1)
				return true
			}
			return false
		},
		FailSend: func(to int, tag uint32) error {
			if tag == 101 {
				return errors.New("injected send failure")
			}
			return nil
		},
	}

	// Dropped: the message never arrives; a deadline proves it.
	if err := fc.Send(1, 100, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if dropped.Load() != 1 {
		t.Fatalf("drop hook fired %d times, want 1", dropped.Load())
	}
	recv := f.Endpoint(1)
	recv.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := recv.Recv(0, 100); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("dropped message was delivered (err=%v)", err)
	}
	recv.SetDeadline(time.Time{})

	// Failed: the configured error surfaces to the caller.
	if err := fc.Send(1, 101, []byte("x")); err == nil {
		t.Fatal("FailSend error not surfaced")
	}

	// Passthrough: untargeted tags flow normally.
	if err := fc.Send(1, 102, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if m, err := recv.Recv(0, 102); err != nil || string(m) != "ok" {
		t.Fatalf("passthrough message: %q, %v", m, err)
	}
}
