// Package repro is a from-scratch Go reproduction of "Scalable Overlapping
// Community Detection" (El-Helw, Hofman, Li, Ahn, Welling, Bal — IPDPS/IPPS
// 2016): a parallel and distributed stochastic-gradient MCMC sampler for the
// assortative mixed-membership stochastic blockmodel (a-MMSB), together with
// every substrate the paper's system depends on — an MPI-style collective
// layer, an RDMA-style distributed key-value store for the π matrix, a
// double-buffered pipeline, synthetic stand-ins for the SNAP datasets, and a
// calibrated performance model that regenerates the paper's cluster-scale
// figures.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for measured-vs-paper results.
// The benchmarks in bench_test.go regenerate one table or figure each.
package repro
