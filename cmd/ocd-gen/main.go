// ocd-gen generates synthetic graphs with planted overlapping communities:
// either one of the Table II presets or a custom configuration. The graph is
// written in SNAP edge-list format; the ground-truth communities (one line
// per community, space-separated vertex ids) go to <out>.gt when requested.
//
// Usage:
//
//	ocd-gen -preset com-dblp-sim -out dblp.txt -groundtruth
//	ocd-gen -n 10000 -k 32 -edges 80000 -seed 7 -out custom.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	var (
		preset     = flag.String("preset", "", "named Table II preset (see -list)")
		list       = flag.Bool("list", false, "list available presets and exit")
		n          = flag.Int("n", 10000, "vertices (custom mode)")
		k          = flag.Int("k", 32, "communities (custom mode)")
		edges      = flag.Int("edges", 80000, "target edges (custom mode)")
		membership = flag.Float64("membership", 1.3, "mean communities per vertex")
		background = flag.Float64("background", 0.05, "fraction of noise edges")
		degCorr    = flag.Bool("degree-corrected", false, "power-law degree targets (Chung-Lu within blocks)")
		seed       = flag.Uint64("seed", 42, "generator seed")
		out        = flag.String("out", "graph.txt", "output edge-list path")
		writeGT    = flag.Bool("groundtruth", false, "also write <out>.gt with the planted communities")
		streamOut  = flag.Bool("stream-out", false, "stream edges to -out without building the graph in memory (custom planted mode only)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available presets (scaled stand-ins for the paper's Table II):")
		for _, p := range gen.Presets() {
			fmt.Printf("  %-24s N=%-8d E=%-9d communities=%-6d (%s)\n",
				p.Name, p.N, p.Edges, p.Communities, p.Description)
		}
		return
	}

	if *streamOut {
		if *preset != "" || *degCorr {
			fatal(fmt.Errorf("-stream-out supports only custom planted mode (no -preset, no -degree-corrected)"))
		}
		cfg := gen.DefaultPlanted(*n, *k, *edges, *seed)
		cfg.MeanMembership = *membership
		cfg.Background = *background
		streamGenerate(cfg, *out, *writeGT)
		return
	}

	var (
		g    *graph.Graph
		gt   *gen.GroundTruth
		name string
		err  error
	)
	if *preset != "" {
		var p gen.Preset
		p, err = gen.PresetByName(*preset)
		if err == nil {
			name = p.Name
			g, gt, err = p.Generate()
		}
	} else if *degCorr {
		name = fmt.Sprintf("degree-corrected planted n=%d k=%d", *n, *k)
		cfg := gen.DefaultDegreeCorrected(*n, *k, *edges, *seed)
		cfg.MeanMembership = *membership
		cfg.Background = *background
		g, gt, err = gen.DegreeCorrected(cfg)
	} else {
		name = fmt.Sprintf("planted n=%d k=%d", *n, *k)
		cfg := gen.DefaultPlanted(*n, *k, *edges, *seed)
		cfg.MeanMembership = *membership
		cfg.Background = *background
		g, gt, err = gen.Planted(cfg)
	}
	if err != nil {
		fatal(err)
	}

	if err := graph.WriteSNAPFile(*out, g, name); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges, mean degree %.1f\n",
		*out, g.NumVertices(), g.NumEdges(), g.MeanDegree())

	if *writeGT {
		path := *out + ".gt"
		cover := metrics.NewCover(g.NumVertices(), gt.Members)
		if err := metrics.WriteCoverFile(path, cover); err != nil {
			fatal(err)
		}
		overlap, err := gt.OverlapFraction(g.NumVertices())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d communities (overlap fraction %.2f)\n",
			path, gt.NumCommunities(), overlap)
	}
}

// streamGenerate writes the planted graph edge-by-edge so peak memory is the
// dedup set, not the CSR — the producer side of -pi-backend mmap training.
func streamGenerate(cfg gen.PlantedConfig, out string, writeGT bool) {
	tmp := out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fatal(err)
	}
	gt, edges, err := gen.PlantedStream(cfg, f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if err := os.Rename(tmp, out); err != nil {
		fatal(err)
	}
	fmt.Printf("streamed %s: %d vertices, %d edges\n", out, cfg.N, edges)

	if writeGT {
		path := out + ".gt"
		cover := metrics.NewCover(cfg.N, gt.Members)
		if err := metrics.WriteCoverFile(path, cover); err != nil {
			fatal(err)
		}
		overlap, err := gt.OverlapFraction(cfg.N)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d communities (overlap fraction %.2f)\n",
			path, gt.NumCommunities(), overlap)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocd-gen:", err)
	os.Exit(1)
}
