// ocd-analyze inspects a graph and, optionally, scores a detected community
// cover against a ground-truth cover — the final step of the
// gen → train → analyze workflow:
//
//	ocd-gen -preset com-dblp-sim -out g.txt -groundtruth
//	ocd-train -graph g.txt -k 64 -iters 2000 -communities detected.txt
//	ocd-analyze -graph g.txt -detected detected.txt -truth g.txt.gt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

func main() {
	var (
		path     = flag.String("graph", "", "input SNAP edge-list (required)")
		detected = flag.String("detected", "", "detected communities file (one community per line)")
		truth    = flag.String("truth", "", "ground-truth communities file")
		ccSample = flag.Int("clustering-samples", 2000, "vertices sampled for the clustering coefficient")
	)
	flag.Parse()
	if *path == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	g, _, err := graph.ReadSNAPFile(*path)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("mean degree %.2f, max degree %d, density %.6f\n",
		g.MeanDegree(), g.MaxDegree(), g.Density())
	_, components := graph.ConnectedComponents(g)
	fmt.Printf("connected components: %d (largest %d vertices)\n",
		components, graph.LargestComponentSize(g))
	cc := graph.ClusteringCoefficient(g, *ccSample, mathx.NewRNG(1))
	fmt.Printf("clustering coefficient (sampled): %.4f\n", cc)

	var det, gt *metrics.Cover
	if *detected != "" {
		det, err = metrics.ReadCoverFile(*detected, g.NumVertices())
		if err != nil {
			fatal(err)
		}
		summarizeCover("detected", det, g.NumVertices())
	}
	if *truth != "" {
		gt, err = metrics.ReadCoverFile(*truth, g.NumVertices())
		if err != nil {
			fatal(err)
		}
		summarizeCover("ground truth", gt, g.NumVertices())
	}
	if det != nil && gt != nil {
		fmt.Printf("\nrecovery: F1 = %.4f, NMI = %.4f\n",
			metrics.F1Score(det, gt), metrics.NMI(det, gt))
	}
}

func summarizeCover(name string, c *metrics.Cover, n int) {
	total := 0
	largest := 0
	for _, m := range c.Members {
		total += len(m)
		if len(m) > largest {
			largest = len(m)
		}
	}
	fmt.Printf("\n%s: %d communities, %d memberships (%.2f per vertex), largest %d\n",
		name, len(c.Members), total, float64(total)/float64(n), largest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocd-analyze:", err)
	os.Exit(1)
}
