// ocd-analyze inspects a graph and, optionally, scores a detected community
// cover against a ground-truth cover — the final step of the
// gen → train → analyze workflow:
//
//	ocd-gen -preset com-dblp-sim -out g.txt -groundtruth
//	ocd-train -graph g.txt -k 64 -iters 2000 -communities detected.txt
//	ocd-analyze -graph g.txt -detected detected.txt -truth g.txt.gt
//
// It also digests the JSONL telemetry stream a run writes with -metrics-out:
//
//	ocd-analyze -events run.jsonl          # human-readable digest
//	ocd-analyze -events run.jsonl -events-json  # machine-readable Summary
//
// And the Chrome trace-event file a run writes with -trace-out: the
// critical-path digest names the rank that bounds each iteration and splits
// its time into compute, peer-imposed wait, and DKV service:
//
//	ocd-analyze -trace run.trace.json
//	ocd-analyze -trace run.trace.json -trace-json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	var (
		path       = flag.String("graph", "", "input SNAP edge-list (required unless -events)")
		detected   = flag.String("detected", "", "detected communities file (one community per line)")
		truth      = flag.String("truth", "", "ground-truth communities file")
		ccSample   = flag.Int("clustering-samples", 2000, "vertices sampled for the clustering coefficient")
		events     = flag.String("events", "", "telemetry JSONL stream to digest (- = stdin)")
		eventsJSON = flag.Bool("events-json", false, "emit the -events digest as one JSON Summary object")
		traceIn    = flag.String("trace", "", "Chrome trace-event file (a run's -trace-out) to analyze for the critical path")
		traceJSON  = flag.Bool("trace-json", false, "emit the -trace report as one JSON CritReport object")
	)
	flag.Parse()
	if *traceIn != "" {
		if err := digestTrace(*traceIn, *traceJSON); err != nil {
			fatal(err)
		}
		if *path == "" && *events == "" {
			return
		}
	}
	if *events != "" {
		if err := digestEvents(*events, *eventsJSON); err != nil {
			fatal(err)
		}
		if *path == "" {
			return
		}
	}
	if *path == "" {
		fatal(fmt.Errorf("-graph is required (or -events, or -trace)"))
	}
	g, _, err := graph.ReadSNAPFile(*path)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("mean degree %.2f, max degree %d, density %.6f\n",
		g.MeanDegree(), g.MaxDegree(), g.Density())
	_, components := graph.ConnectedComponents(g)
	fmt.Printf("connected components: %d (largest %d vertices)\n",
		components, graph.LargestComponentSize(g))
	cc := graph.ClusteringCoefficient(g, *ccSample, mathx.NewRNG(1))
	fmt.Printf("clustering coefficient (sampled): %.4f\n", cc)

	var det, gt *metrics.Cover
	if *detected != "" {
		det, err = metrics.ReadCoverFile(*detected, g.NumVertices())
		if err != nil {
			fatal(err)
		}
		summarizeCover("detected", det, g.NumVertices())
	}
	if *truth != "" {
		gt, err = metrics.ReadCoverFile(*truth, g.NumVertices())
		if err != nil {
			fatal(err)
		}
		summarizeCover("ground truth", gt, g.NumVertices())
	}
	if det != nil && gt != nil {
		fmt.Printf("\nrecovery: F1 = %.4f, NMI = %.4f\n",
			metrics.F1Score(det, gt), metrics.NMI(det, gt))
	}
}

func summarizeCover(name string, c *metrics.Cover, n int) {
	total := 0
	largest := 0
	for _, m := range c.Members {
		total += len(m)
		if len(m) > largest {
			largest = len(m)
		}
	}
	fmt.Printf("\n%s: %d communities, %d memberships (%.2f per vertex), largest %d\n",
		name, len(c.Members), total, float64(total)/float64(n), largest)
}

// digestEvents validates a JSONL telemetry stream and prints its Summary,
// either as indented JSON (asJSON) or as a short human-readable digest.
func digestEvents(path string, asJSON bool) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	evs, err := obs.ReadEvents(in)
	if err != nil {
		// A torn tail — the run died (or is still running) mid-write of the
		// last line — is expected for crash forensics, which is exactly when
		// this digest is most useful: warn and digest what did land.
		var torn *obs.TornTailError
		if !errors.As(err, &torn) {
			return err
		}
		fmt.Fprintf(os.Stderr, "ocd-analyze: warning: %v (digesting the %d complete events)\n", torn, len(evs))
	}
	sum, err := obs.Summarize(evs)
	if err != nil {
		return err
	}
	if asJSON {
		buf, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
		return nil
	}
	fmt.Printf("telemetry: %d events, %d ranks, %d iterations, %.2fs elapsed\n",
		sum.Events, sum.Ranks, sum.Iterations, sum.ElapsedMS/1000)
	if sum.StartIter > 0 {
		fmt.Printf("resumed run: iter events start at %d (restarted from a checkpoint)\n", sum.StartIter)
	}
	if sum.FinalPerplexity > 0 {
		fmt.Printf("final perplexity: %.4f\n", sum.FinalPerplexity)
	}
	stages := make([]string, 0, len(sum.StageMSPerIter))
	for name := range sum.StageMSPerIter {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	fmt.Printf("per-stage ms/iteration (max across ranks):\n")
	for _, name := range stages {
		fmt.Printf("  %-22s %10.3f\n", name, sum.StageMSPerIter[name])
	}
	if sum.DKV.Requests > 0 {
		fmt.Printf("DKV traffic: %d local keys, %d remote keys, %d requests, %.1f MB read, %.1f MB written\n",
			sum.DKV.LocalKeys, sum.DKV.RemoteKeys, sum.DKV.Requests,
			float64(sum.DKV.BytesRead)/1e6, float64(sum.DKV.BytesWritten)/1e6)
	}
	if lookups := sum.DKV.CacheHits + sum.DKV.CacheMisses; lookups > 0 {
		fmt.Printf("hot-row cache: %d hits / %d lookups (%.1f%% hit rate), %d evictions, %d invalidations\n",
			sum.DKV.CacheHits, lookups, 100*sum.CacheHitRate,
			sum.DKV.CacheEvictions, sum.DKV.CacheInvalidations)
	}
	if len(sum.StageSkew) > 0 {
		names := make([]string, 0, len(sum.StageSkew))
		for name := range sum.StageSkew {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("stage skew (slowest rank vs median ms/iteration):\n")
		for _, name := range names {
			sk := sum.StageSkew[name]
			fmt.Printf("  %-22s %10.3f vs %10.3f  skew %5.2f  slowest rank %d\n",
				name, sk.MaxMS, sk.MedianMS, sk.Skew, sk.SlowRank)
		}
	}
	if len(sum.PeerWaitMS) > 0 {
		fmt.Printf("peer recv-wait imposed on others (ms):")
		for _, p := range sortedPeers(sum.PeerWaitMS) {
			fmt.Printf(" rank%d %.1f", p, sum.PeerWaitMS[p])
		}
		fmt.Printf("; skew %.2f", sum.PeerSkew)
		if len(sum.Stragglers) > 0 {
			fmt.Printf(" — straggler:")
			for _, p := range sum.Stragglers {
				fmt.Printf(" rank %d", p)
			}
		}
		fmt.Println()
	}
	if sum.Rebalances > 0 {
		fmt.Printf("straggler mitigation: %d rebalances; final minibatch shares:", sum.Rebalances)
		for r, w := range sum.FinalWeights {
			fmt.Printf(" rank%d %.2f", r, w)
		}
		fmt.Println()
	}
	return nil
}

// digestTrace loads a Chrome trace-event file back into span bundles and
// prints the per-iteration critical-path attribution, either as the stable
// human-readable report or as one JSON CritReport (asJSON).
func digestTrace(path string, asJSON bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bundles, err := obs.ReadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("reading trace %s: %w", path, err)
	}
	rep := obs.AnalyzeCriticalPath(bundles)
	if asJSON {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
		return nil
	}
	fmt.Print(rep.String())
	return nil
}

func sortedPeers(m map[int]float64) []int {
	peers := make([]int, 0, len(m))
	for p := range m {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	return peers
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocd-analyze:", err)
	os.Exit(1)
}
