// ocd-paper regenerates the paper's tables and figures. Model-driven
// experiments (fig1..fig5, tableIII) print instantly from the DAS5-calibrated
// performance model; validation and convergence experiments (fig1v, fig3v,
// fig4v, fig6) execute the real engine on this machine.
//
// Usage:
//
//	ocd-paper -exp all
//	ocd-paper -exp fig6 -preset com-youtube-sim -iters 600
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: tableII, fig1, fig1v, fig2, fig3, fig3v, tableIII, fig4, fig4v, fig5, fig6, compare, all, all+validate")
		preset   = flag.String("preset", "com-dblp-sim", "dataset preset for fig6")
		allSets  = flag.Bool("all-datasets", false, "fig6: run every Table II preset (slow)")
		iters    = flag.Int("iters", 0, "iterations for real-run experiments (0 = auto-size)")
		ranks    = flag.Int("ranks", 4, "simulated cluster size for real-run experiments")
		generate = flag.Bool("generate", false, "tableII: actually generate every preset")
		evOut    = flag.String("events-out", "", "fig6: also save the run's JSONL telemetry stream to this file")
		fromEv   = flag.String("from-events", "", "fig6: rebuild the convergence table from this saved JSONL stream instead of running the engine")
	)
	flag.Parse()

	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ocd-paper: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	pure := func(s string) func() (string, error) {
		return func() (string, error) { return s, nil }
	}

	want := func(name string) bool {
		switch *exp {
		case "all":
			return !strings.HasSuffix(name, "v") && name != "fig6" && name != "compare"
		case "all+validate":
			return true
		default:
			return *exp == name
		}
	}

	if want("tableII") {
		run("tableII", func() (string, error) { return experiments.TableII(*generate) })
	}
	if want("fig1") {
		run("fig1", pure(experiments.Fig1()))
	}
	if want("fig1v") {
		run("fig1v", func() (string, error) { return experiments.Fig1Validation(*iters / 5) })
	}
	if want("fig2") {
		run("fig2", pure(experiments.Fig2()))
	}
	if want("fig3") {
		run("fig3", pure(experiments.Fig3()))
	}
	if want("fig3v") {
		run("fig3v", func() (string, error) { return experiments.Fig3Validation(*iters / 5) })
	}
	if want("tableIII") {
		run("tableIII", pure(experiments.TableIII()))
	}
	if want("fig4") {
		run("fig4", pure(experiments.Fig4()))
	}
	if want("fig4v") {
		run("fig4v", func() (string, error) { return experiments.Fig4Validation(*iters / 5) })
	}
	if want("fig5") {
		run("fig5", pure(experiments.Fig5()))
	}
	if want("compare") {
		run("compare", func() (string, error) { return experiments.CompareInference(*iters) })
	}
	if want("fig6") {
		if *fromEv != "" {
			run("fig6", func() (string, error) { return experiments.Fig6FromEvents(*fromEv) })
			return
		}
		names := []string{*preset}
		if *allSets {
			names = names[:0]
			for _, p := range gen.Presets() {
				names = append(names, p.Name)
			}
		}
		for _, name := range names {
			cfg := experiments.Fig6Config{Preset: name, Ranks: *ranks, Iterations: *iters, EventsOut: *evOut}
			run("fig6/"+name, func() (string, error) { return experiments.Fig6(cfg) })
		}
	}
}
