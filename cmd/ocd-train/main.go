// ocd-train runs the single-node (sequential or multi-threaded) SG-MCMC
// sampler on an edge-list graph, reporting held-out perplexity as training
// progresses and optionally the detected communities.
//
// Usage:
//
//	ocd-train -graph dblp.txt -k 64 -iters 2000 -eval 100 -threads 8
//	ocd-train -graph g.txt -k 32 -communities out.communities
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		path     = flag.String("graph", "", "input SNAP edge-list (required)")
		k        = flag.Int("k", 32, "number of latent communities")
		iters    = flag.Int("iters", 1000, "training iterations")
		evalEach = flag.Int("eval", 100, "perplexity evaluation interval")
		threads  = flag.Int("threads", 0, "worker threads (0 = all cores)")
		seed     = flag.Uint64("seed", 42, "random seed")
		heldDiv  = flag.Int("heldout-div", 50, "held-out links = |E| / this")
		mb       = flag.Int("minibatch", 256, "minibatch size in vertex pairs")
		neigh    = flag.Int("neighbors", 32, "neighbor sample size |V_n|")
		uniform  = flag.Bool("uniform-neighbors", false, "use the paper's Eqn (5) uniform neighbor sampling")
		strat    = flag.Bool("stratified", false, "use stratified random node minibatches")
		alpha    = flag.Float64("alpha", 0, "Dirichlet concentration (0 = 1/K)")
		commOut  = flag.String("communities", "", "write detected communities to this path")
		ckptOut  = flag.String("checkpoint", "", "write a checkpoint to this path when done")
		resume   = flag.String("resume", "", "resume training from this checkpoint")
		avgTail  = flag.Int("posterior-samples", 0, "average this many chain samples (20 iterations apart) for the final estimate")
		auc      = flag.Bool("auc", false, "also report held-out link-prediction AUC")
		metricsO = flag.String("metrics-out", "", "write the JSONL telemetry event stream to this file (- = stdout)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event file (Perfetto-loadable) of the iteration/stage spans at run end")
		serveAt  = flag.String("serve", "", "answer membership queries over HTTP on this address while training (e.g. :7070)")
		streamIn = flag.Bool("stream", false, "stream the edge list from disk (requires a '# Nodes: <n>' header; avoids the transient edge-list copy)")
		piBack   = flag.String("pi-backend", "local", "π table backend: local (in-RAM) or mmap (sharded memory-mapped files)")
		piDir    = flag.String("pi-dir", "", "directory for the mmap π shards (must not already hold a store; required with -pi-backend mmap)")
		piShards = flag.Int("pi-shard-rows", store.DefaultShardRows, "rows per mmap shard file")
		piHot    = flag.Int("pi-hot-rows", 0, "hot-row cache capacity in front of the mmap backend (0 = none)")
	)
	flag.Parse()
	if *path == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	outOfCore := *piBack == "mmap"
	if *piBack != "local" && *piBack != "mmap" {
		fatal(fmt.Errorf("-pi-backend must be local or mmap, got %q", *piBack))
	}
	if outOfCore {
		if *piDir == "" {
			fatal(fmt.Errorf("-pi-backend mmap requires -pi-dir"))
		}
		// These consumers materialise or post-process the full π table in RAM,
		// which is exactly what the mmap backend exists to avoid. Use the
		// checkpoint (-checkpoint) or the serving snapshot tier instead.
		if *avgTail > 0 || *auc || *commOut != "" {
			fatal(fmt.Errorf("-posterior-samples/-auc/-communities need the in-RAM backend; with -pi-backend mmap use -checkpoint and post-process"))
		}
	}

	var (
		g   *graph.Graph
		err error
	)
	if *streamIn {
		src, serr := graph.OpenEdgeFile(*path)
		if serr != nil {
			fatal(serr)
		}
		g, err = graph.FromEdgeSource(src)
	} else {
		g, _, err = graph.ReadSNAPFile(*path)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *path, g.NumVertices(), g.NumEdges())

	train, held, err := graph.Split(g, g.NumEdges() / *heldDiv, mathx.NewRNG(*seed+1))
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(*k, *seed)
	if *alpha > 0 {
		cfg.Alpha = *alpha
	} else {
		cfg.Alpha = 1 / float64(*k)
	}
	sopts := core.SamplerOptions{
		MinibatchPairs: *mb, NeighborCount: *neigh, Threads: *threads,
		UniformNeighbors: *uniform, Stratified: *strat,
	}
	// -pi-backend mmap: π lives in sharded memory-mapped files under -pi-dir
	// instead of one big in-RAM slab; an optional hot-row cache (-pi-hot-rows)
	// keeps frequently-touched vertices decoded in memory.
	var (
		ms   *store.MmapStore
		tier *store.TieredStore
	)
	if outOfCore {
		mo := store.MmapOptions{ShardRows: *piShards, Threads: *threads}
		ms, err = store.CreateMmap(*piDir, train.NumVertices(), *k, mo)
		if err != nil {
			fatal(err)
		}
		if err := ms.InitRows(core.ShellInit(cfg)); err != nil {
			fatal(err)
		}
		if _, err := ms.Seal(); err != nil {
			fatal(err)
		}
		sopts.Store = ms
		if *piHot > 0 {
			tier, err = store.NewTiered(ms, nil, *piHot, *threads, nil)
			if err != nil {
				fatal(err)
			}
			sopts.Store = tier
		}
		fmt.Printf("π backend: mmap in %s (%d rows/shard, hot cache %d rows)\n",
			*piDir, *piShards, *piHot)
	}
	// The local sampler has no parameter-store traffic, so the recorder runs
	// without a registry: stage durations and perplexity only.
	var rec *obs.RunRecorder
	var sink *obs.Sink
	if *metricsO != "" {
		sink, err = openSink(*metricsO)
		if err != nil {
			fatal(err)
		}
		rec = obs.NewRunRecorder(sink, 0, nil)
		sopts.Recorder = rec
	}
	// -trace-out: the single-rank timeline (iteration + stage spans; no
	// collectives or DKV traffic exist here). Same file format as the
	// distributed engine's trace, so the Perfetto workflow is identical.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0, 0)
		sopts.Tracer = tracer
	}
	// -serve: publish a sealed π snapshot after every iteration and answer
	// queries against the freshest one while training continues. Publication
	// only reads, so the trained model is bit-identical with or without it.
	if *serveAt != "" {
		pub := store.NewPublisher()
		sopts.Publisher = pub
		eng := serve.NewEngine(0)
		eng.Attach(pub)
		srv := serve.New(*serveAt, eng, pub)
		bound, err := srv.Start()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving queries: http://%s/ (endpoints: /topk /members /shared /stats)\n", bound)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}
	s, err := core.NewSampler(cfg, train, held, sopts)
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		if sopts.Store != nil {
			// Streamed restore: π rows go straight into the external store,
			// only θ (and the derived β) pass through RAM.
			theta, iter, err := core.LoadStoreFile(*resume, sopts.Store)
			if err != nil {
				fatal(err)
			}
			shell, err := core.NewStateShell(cfg, train.NumVertices())
			if err != nil {
				fatal(err)
			}
			copy(shell.Theta, theta)
			shell.RefreshBeta()
			if err := core.Resume(cfg, train, shell, iter, s); err != nil {
				fatal(err)
			}
			fmt.Printf("resumed from %s at iteration %d (streamed into %s)\n", *resume, iter, *piBack)
		} else {
			state, iter, err := core.LoadFileFor(*resume, cfg, train.NumVertices())
			if err != nil {
				fatal(err)
			}
			if err := core.Resume(cfg, train, state, iter, s); err != nil {
				fatal(err)
			}
			fmt.Printf("resumed from %s at iteration %d\n", *resume, iter)
		}
	}

	start := time.Now()
	if rec != nil {
		rec.RunStart(1, *iters)
	}
	fmt.Printf("%10s %12s %14s\n", "iteration", "elapsed (s)", "perplexity")
	for t := 0; t < *iters; t++ {
		s.Step()
		if *evalEach > 0 && (t+1)%*evalEach == 0 {
			fmt.Printf("%10d %12.2f %14.4f\n", t+1, time.Since(start).Seconds(), s.EvalPerplexity())
		}
	}
	if rec != nil {
		rec.RunEnd(*iters)
		if err := sink.Close(); err != nil {
			fatal(fmt.Errorf("flushing -metrics-out: %w", err))
		}
	}
	fmt.Printf("trained %d iterations in %.2fs\n", *iters, time.Since(start).Seconds())
	if tier != nil {
		st := tier.Stats()
		total := st.HotHits + st.HotMisses
		rate := 0.0
		if total > 0 {
			rate = float64(st.HotHits) / float64(total)
		}
		fmt.Printf("π tier: hot %d/%d reads cached (%.1f%%), mmap hits %d\n",
			st.HotHits, total, 100*rate, st.MmapHits)
	}
	if rss, ok := peakRSSKiB(); ok {
		fmt.Printf("peak RSS: %.1f MiB\n", float64(rss)/1024)
	}
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: wrote %d spans to %s (%d dropped)\n", tracer.Len(), *traceOut, tracer.Dropped())
	}

	final := s.State
	if *avgTail > 0 {
		acc := core.NewPosteriorMean(train.NumVertices(), *k)
		for i := 0; i < *avgTail; i++ {
			s.Run(20)
			acc.Add(s.State)
		}
		final = acc.State()
		fmt.Printf("averaged %d posterior samples for the final estimate\n", *avgTail)
	}
	if *auc {
		pairs := make([][2]int32, held.Len())
		for i, e := range held.Pairs {
			pairs[i] = [2]int32{e.A, e.B}
		}
		fmt.Printf("held-out link-prediction AUC: %.4f\n",
			metrics.LinkAUC(final, pairs, held.Linked, cfg.Delta))
	}

	if *ckptOut != "" {
		if sopts.Store != nil {
			err = core.SaveStoreFile(*ckptOut, sopts.Store, s.State.Theta, s.Iteration())
		} else {
			err = s.State.SaveFile(*ckptOut, s.Iteration())
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s (iteration %d)\n", *ckptOut, s.Iteration())
	}
	// Seal the mmap store so the trained π generation is durable on disk and a
	// later OpenMmap sees it; a crash before this point leaves the previous
	// sealed generation intact.
	if ms != nil {
		gen, err := ms.Seal()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sealed π store %s (generation %d)\n", *piDir, gen)
	}

	if *commOut != "" {
		cover := metrics.FromState(final, 0)
		if err := metrics.WriteCoverFile(*commOut, cover); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d detected communities to %s\n", len(cover.Members), *commOut)
	}
}

// openSink opens the -metrics-out destination: "-" streams to stdout (the
// caller keeps ownership), anything else creates/truncates a file the sink
// owns and closes.
func openSink(path string) (*obs.Sink, error) {
	if path == "-" {
		return obs.NewSink(os.Stdout), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return obs.NewFileSink(f), nil
}

// writeTrace renders the single local bundle as a Chrome trace-event file.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, []obs.TraceBundle{tr.Bundle()}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// peakRSSKiB reads the process high-water-mark RSS from /proc/self/status —
// the number the memory-capped CI job asserts against.
func peakRSSKiB() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kib, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kib, true
	}
	return 0, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocd-train:", err)
	os.Exit(1)
}
