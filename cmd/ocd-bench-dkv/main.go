// ocd-bench-dkv measures the real DKV store's read bandwidth across payload
// sizes — the measurable analogue of the paper's Figure 5 (which compared
// the RDMA DKV store against raw qperf on FDR InfiniBand). Two transports
// are exercised: the in-process fabric (upper bound, "qperf role") and a TCP
// loopback mesh (the store's deployable transport).
//
// Usage:
//
//	ocd-bench-dkv -ranks 4 -rounds 200
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/dkv"
	"repro/internal/transport"
)

func main() {
	var (
		ranks  = flag.Int("ranks", 4, "number of store ranks")
		rounds = flag.Int("rounds", 200, "read batches per measurement")
		n      = flag.Int("keys", 8192, "total keys in the store")
	)
	flag.Parse()

	fmt.Printf("DKV read bandwidth, %d ranks, %d keys\n", *ranks, *n)
	fmt.Printf("%8s %10s %16s %16s\n", "rows", "bytes", "inproc (MB/s)", "tcp (MB/s)")
	for _, rows := range []int{1, 4, 16, 64, 256, 1024} {
		for _, valBytes := range []int{264, 1032, 4104} {
			inproc := measure(*ranks, *n, valBytes, rows, *rounds, dialInproc)
			tcp := measure(*ranks, *n, valBytes, rows, *rounds, dialTCP)
			fmt.Printf("%8d %10d %16.1f %16.1f\n", rows, rows*valBytes, inproc, tcp)
		}
	}
}

type dialFn func(ranks int) ([]transport.Conn, func(), error)

func dialInproc(ranks int) ([]transport.Conn, func(), error) {
	f, err := transport.NewFabric(ranks)
	if err != nil {
		return nil, nil, err
	}
	return f.Endpoints(), f.Close, nil
}

func dialTCP(ranks int) ([]transport.Conn, func(), error) {
	addrs := make([]string, ranks)
	listeners := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	conns := make([]transport.Conn, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := transport.DialMesh(r, addrs)
			conns[r], errs[r] = c, err
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	cleanup := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	return conns, cleanup, nil
}

func measure(ranks, n, valBytes, rows, rounds int, dial dialFn) float64 {
	conns, cleanup, err := dial(ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocd-bench-dkv:", err)
		os.Exit(1)
	}
	defer cleanup()
	stores := make([]*dkv.Store, ranks)
	for r := 0; r < ranks; r++ {
		st, err := dkv.New(conns[r], n, valBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ocd-bench-dkv:", err)
			os.Exit(1)
		}
		stores[r] = st
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	val := make([]byte, valBytes)
	for r := 0; r < ranks; r++ {
		lo, hi := stores[r].OwnedRange()
		for k := lo; k < hi; k++ {
			stores[r].WriteLocal(k, val)
		}
	}

	keys := make([]int32, rows)
	for i := range keys {
		keys[i] = int32((i*769 + 13) % n)
	}
	dst := make([]byte, rows*valBytes)
	// Warm up.
	for i := 0; i < 3; i++ {
		if err := stores[0].ReadBatch(keys, dst); err != nil {
			fmt.Fprintln(os.Stderr, "ocd-bench-dkv:", err)
			os.Exit(1)
		}
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := stores[0].ReadBatch(keys, dst); err != nil {
			fmt.Fprintln(os.Stderr, "ocd-bench-dkv:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(rows*valBytes*rounds) / elapsed / 1e6
}
