// ocd-serve answers membership queries from a trained model checkpoint: it
// loads the state written by ocd-train/ocd-cluster -checkpoint, seals it into
// an immutable snapshot (version = the stored iteration), and serves the
// internal/serve HTTP/JSON API until interrupted.
//
// Usage:
//
//	ocd-serve -checkpoint model.ckpt -addr :7070
//	curl 'localhost:7070/topk?v=17&k=5'
//	curl 'localhost:7070/members?c=3&limit=20'
//	curl 'localhost:7070/shared?u=17&v=42'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		ckpt      = flag.String("checkpoint", "", "model checkpoint to serve (required)")
		addr      = flag.String("addr", ":7070", "HTTP listen address")
		threshold = flag.Float64("threshold", 0, "community membership cut-off for /members and /shared (0 = 1.5/K)")
	)
	flag.Parse()
	if *ckpt == "" {
		fatal(fmt.Errorf("-checkpoint is required"))
	}

	state, iter, err := core.LoadFile(*ckpt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d vertices, K=%d, iteration %d\n", *ckpt, state.N, state.K, iter)

	// Seal through the same Snapshotter path the training engines publish
	// with; the snapshot version is the checkpoint's iteration counter.
	pub := store.NewPublisher()
	eng := serve.NewEngine(float32(*threshold))
	eng.Attach(pub)
	snap, err := store.NewLocal(state.Pi, state.PhiSum, state.K, 1).Snapshot(iter, state.Beta)
	if err != nil {
		fatal(err)
	}
	if err := pub.Publish(snap); err != nil {
		fatal(err)
	}

	srv := serve.New(*addr, eng, pub)
	bound, err := srv.Start()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving: http://%s/ (endpoints: /topk /members /shared /stats)\n", bound)

	// Serve until interrupted, then drain in-flight queries.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocd-serve:", err)
	os.Exit(1)
}
