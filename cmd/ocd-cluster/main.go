// ocd-cluster runs the distributed engine on a simulated cluster: the given
// number of ranks execute the full master-worker protocol (minibatch
// scatter, DKV π storage, chunk-ordered θ reduction) over the in-process
// fabric, and the per-phase breakdown is printed at the end — the same rows
// as the paper's Table III.
//
// Usage:
//
//	ocd-cluster -graph dblp.txt -ranks 8 -k 64 -iters 500 -pipeline
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/transport"
)

func main() {
	var (
		path      = flag.String("graph", "", "input SNAP edge-list (required)")
		ranks     = flag.Int("ranks", 4, "simulated cluster size")
		threads   = flag.Int("threads", 2, "threads per rank")
		k         = flag.Int("k", 32, "number of latent communities")
		iters     = flag.Int("iters", 500, "training iterations")
		evalEach  = flag.Int("eval", 100, "perplexity evaluation interval (0 = never)")
		pipeline  = flag.Bool("pipeline", false, "enable double-buffered π loading and minibatch prefetch")
		phiChunk  = flag.Int("phi-chunk", 0, "pipeline chunk size in minibatch vertices (0 = automatic policy)")
		pipeDepth = flag.Int("pipeline-depth", 2, "π-load buffer slots per rank (2 = the paper's double buffering)")
		seed      = flag.Uint64("seed", 42, "random seed")
		heldDiv   = flag.Int("heldout-div", 50, "held-out links = |E| / this")
		mb        = flag.Int("minibatch", 256, "minibatch size in vertex pairs")
		neigh     = flag.Int("neighbors", 32, "neighbor sample size |V_n|")
		hotCache  = flag.Int("hot-cache", 0, "per-rank hot-row cache size in π rows (0 = off; result is bit-identical either way)")
		cachePol  = flag.String("hot-cache-policy", "lru", "cache admission policy: lru (admit everything) or admit2 (admit on second sighting)")
		cacheXit  = flag.Bool("hot-cache-cross-iter", false, "keep the cache alive across barriers, dropping only rows named by the write-set exchange")
		cacheDeg  = flag.Int("hot-cache-min-degree", 0, "with -hot-cache-policy admit2, admit rows of at least this graph degree on first sighting")
		transp    = flag.String("transport", "inproc", "rank interconnect: inproc (shared-memory fabric) or tcp (loopback mesh, real wire framing)")
		failRank  = flag.Int("fail-rank", -1, "fault injection: rank to crash (-1 = none)")
		failIter  = flag.Int("fail-iter", 0, "fault injection: iteration at which -fail-rank crashes")
		slowRank  = flag.Int("slow-rank", -1, "fault injection: rank whose collective sends are delayed by -slow-send (-1 = none); the straggler report should flag it")
		slowSend  = flag.Duration("slow-send", time.Millisecond, "per-send delay injected at -slow-rank")
		slowPhi   = flag.Duration("slow-phi", 0, "fault injection: per-assigned-node compute delay injected into -slow-rank's update_phi — the degraded-CPU straggler -rebalance can cure")
		rebalance = flag.Bool("rebalance", false, "close the straggler loop: re-shard each window's minibatch away from flagged ranks (trained model stays bit-identical)")
		rebalWin  = flag.Int("rebalance-window", 0, "straggler-mitigation window in iterations (0 = library default)")
		ckptPath  = flag.String("checkpoint", "", "write a coordinated checkpoint of (π, Σφ, θ, iteration) to this file every -checkpoint-every iterations")
		ckptEvery = flag.Int("checkpoint-every", 10, "checkpoint interval in iterations")
		restart   = flag.String("restart-from", "", "resume from a -checkpoint file: ranks initialise from its state and training continues at its iteration")
		metrics   = flag.String("metrics-out", "", "write the JSONL telemetry event stream to this file (- = stdout)")
		monitor   = flag.String("monitor", "", "serve live metrics over HTTP on this address (e.g. :6060 or 127.0.0.1:0)")
		pprofOn   = flag.Bool("pprof", false, "with -monitor, expose net/http/pprof under /debug/pprof/ (explicit opt-in; enables block profiling)")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event file (Perfetto-loadable) with every rank's spans at run end")
		serveAt   = flag.String("serve", "", "answer membership queries over HTTP on this address while training (e.g. :7070)")
		pubEvery  = flag.Int("publish-every", 1, "with -serve, publish a fresh snapshot every this many iterations")
		rankTable = flag.Bool("rank-table", false, "print the per-rank × per-stage time table after the run")
	)
	flag.Parse()
	if *path == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	if err := validateFaultFlags(*ranks, *failRank, *slowRank, *slowPhi); err != nil {
		fatal(err)
	}

	g, _, err := graph.ReadSNAPFile(*path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *path, g.NumVertices(), g.NumEdges())
	train, held, err := graph.Split(g, g.NumEdges() / *heldDiv, mathx.NewRNG(*seed+1))
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(*k, *seed)
	cfg.Alpha = 1 / float64(*k)
	opts := dist.Options{
		Ranks: *ranks, Threads: *threads, Iterations: *iters,
		EvalEvery: *evalEach, Pipeline: *pipeline,
		PhiChunkNodes: *phiChunk, PipelineDepth: *pipeDepth,
		MinibatchPairs: *mb, NeighborCount: *neigh,
		HotRowCache: *hotCache, HotCachePolicy: *cachePol,
		HotCacheCrossIter: *cacheXit, HotCacheMinDegree: *cacheDeg,
	}
	if *failRank >= 0 {
		opts.FaultHook = func(rank, iter int) error {
			if rank == *failRank && iter == *failIter {
				return fmt.Errorf("injected fault (-fail-rank %d -fail-iter %d)", rank, iter)
			}
			return nil
		}
	}
	if *rebalance {
		opts.Rebalance = true
		opts.RebalanceCfg = engine.DefaultRebalanceConfig()
		if *rebalWin > 0 {
			opts.RebalanceCfg.Window = *rebalWin
		}
	}
	if *slowPhi > 0 {
		// Compute-proportional straggler at the -slow-rank rank: each
		// update_phi sleeps perNode × assigned nodes, so shrinking the rank's
		// share genuinely shrinks its lag — unlike -slow-send, whose fixed
		// per-send cost no re-sharding can cure.
		perNode, target := *slowPhi, *slowRank
		opts.ComputeDelay = func(rank, nodes int) time.Duration {
			if rank != target {
				return 0
			}
			return time.Duration(nodes) * perNode
		}
	}
	opts.CheckpointPath = *ckptPath
	opts.CheckpointEvery = *ckptEvery
	if *restart != "" {
		state, iter, err := core.LoadFileFor(*restart, cfg, train.NumVertices())
		if err != nil {
			fatal(fmt.Errorf("-restart-from: %w", err))
		}
		if iter >= *iters {
			fatal(fmt.Errorf("-restart-from checkpoint is at iteration %d, at or past -iters %d", iter, *iters))
		}
		opts.RestartState = state
		opts.RestartIter = iter
		fmt.Printf("resuming from %s at iteration %d\n", *restart, iter)
	}
	if *metrics != "" {
		sink, err := openSink(*metrics)
		if err != nil {
			fatal(err)
		}
		opts.Events = sink
	}
	if *pprofOn && *monitor == "" {
		fatal(fmt.Errorf("-pprof requires -monitor (the profiles are served on the monitor address)"))
	}
	if *monitor != "" {
		mon := obs.NewMonitor(*monitor)
		if *pprofOn {
			mon.EnablePprof() // before Start: the route table is built at bind time
		}
		addr, err := mon.Start()
		if err != nil {
			fatal(err)
		}
		defer mon.Close()
		fmt.Printf("monitor: http://%s/metrics\n", addr)
		if *pprofOn {
			fmt.Printf("pprof:   http://%s/debug/pprof/\n", addr)
		}
		opts.Monitor = mon
	}
	opts.TraceOut = *traceOut
	// -serve: the master publishes the assembled π view every -publish-every
	// iterations and this process answers queries against the freshest
	// snapshot while the run continues. Bit-identical training either way.
	if *serveAt != "" {
		pub := store.NewPublisher()
		opts.Publisher = pub
		opts.PublishEvery = *pubEvery
		eng := serve.NewEngine(0)
		eng.Attach(pub)
		srv := serve.New(*serveAt, eng, pub)
		bound, err := srv.Start()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving queries: http://%s/ (endpoints: /topk /members /shared /stats)\n", bound)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}
	// Both interconnects go through RunOnTransport over an explicit conn
	// slice so fault wrappers (the -slow-rank straggler injection) apply
	// uniformly.
	var conns []transport.Conn
	var cleanup func()
	switch *transp {
	case "inproc":
		fabric, ferr := transport.NewFabric(*ranks)
		if ferr != nil {
			fatal(ferr)
		}
		conns = fabric.Endpoints()
		cleanup = func() { fabric.Close() }
	case "tcp":
		// Real wire framing on the loopback mesh: the instrumented conns
		// count every byte the protocol puts on a socket, so the
		// transport.* counters below reflect multi-process traffic.
		conns, cleanup, err = dialLoopbackMesh(*ranks)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -transport %q (want inproc or tcp)", *transp))
	}
	// validateFaultFlags guaranteed *slowRank < *ranks == len(conns), so a
	// requested straggler is always actually injected — an out-of-range rank
	// used to be silently ignored here, making the run look mysteriously
	// healthy.
	if *slowRank >= 0 {
		// Delay only collective-tag sends: the signature of a rank whose
		// compute lags (late barrier/gather contributions) without also
		// throttling its DKV request serving.
		delay := *slowSend
		conns[*slowRank] = &transport.FaultConn{
			Conn: conns[*slowRank],
			DelaySend: func(_ int, tag uint32) time.Duration {
				if tag < cluster.TagUserBase {
					return delay
				}
				return 0
			},
		}
	}
	res, err := dist.RunOnTransport(cfg, train, held, opts, conns)
	cleanup()
	if err != nil {
		fatal(err)
	}
	if opts.Events != nil {
		if err := opts.Events.Close(); err != nil {
			fatal(fmt.Errorf("flushing -metrics-out: %w", err))
		}
	}

	fmt.Printf("\nperplexity trace:\n%10s %12s %14s\n", "iteration", "elapsed (s)", "perplexity")
	for _, p := range res.Perplexity {
		fmt.Printf("%10d %12.2f %14.4f\n", p.Iter, p.Elapsed.Seconds(), p.Value)
	}

	fmt.Printf("\nphase breakdown (max across %d ranks):\n%s", *ranks, res.Phases.Table(*iters))
	if *rankTable {
		fmt.Printf("\nper-rank breakdown:\n%s", dist.RankTable(res.RankPhases, *iters))
	}
	fmt.Printf("\nDKV traffic: %d local keys, %d remote keys (%.1f%% remote), %d requests, %.1f MB read, %.1f MB written\n",
		res.DKV.LocalKeys, res.DKV.RemoteKeys, 100*res.RemoteFrac, res.DKV.Requests,
		float64(res.DKV.BytesRead)/1e6, float64(res.DKV.BytesWritten)/1e6)
	if *hotCache > 0 {
		lookups := res.DKV.CacheHits + res.DKV.CacheMisses
		rate := 0.0
		if lookups > 0 {
			rate = 100 * float64(res.DKV.CacheHits) / float64(lookups)
		}
		fmt.Printf("hot-row cache: %d hits / %d lookups (%.1f%% hit rate), %d evictions, %d invalidations (cap %d rows/rank, policy %s, cross-iter %v)\n",
			res.DKV.CacheHits, lookups, rate, res.DKV.CacheEvictions, res.DKV.CacheInvalidations,
			*hotCache, *cachePol, *cacheXit)
	}
	if sent := res.Metrics.Counters[obs.CtrNetBytesSent]; sent > 0 {
		fmt.Printf("transport (%s): %d msgs / %.1f MB sent, %d msgs / %.1f MB received\n",
			*transp, res.Metrics.Counters[obs.CtrNetMsgsSent], float64(sent)/1e6,
			res.Metrics.Counters[obs.CtrNetMsgsRecv], float64(res.Metrics.Counters[obs.CtrNetBytesRecv])/1e6)
	}
	if res.Peers != nil {
		rep := res.Peers.Straggler()
		fmt.Println(rep)
	}
	if *rebalance {
		fmt.Printf("straggler mitigation: %d/%d windows rebalanced, %d rank flags\n",
			res.Metrics.Counters[obs.CtrReshardChanges],
			res.Metrics.Counters[obs.CtrReshardWindows],
			res.Metrics.Counters[obs.CtrReshardFlags])
	}
	if *traceOut != "" {
		fmt.Printf("trace: wrote %d rank bundles to %s (load in Perfetto, or feed to ocd-analyze -trace)\n",
			len(res.Trace), *traceOut)
	}
	fmt.Printf("total wall time: %.2fs for %d iterations (%.1f ms/iteration)\n",
		res.Elapsed.Seconds(), *iters, res.Elapsed.Seconds()*1000/float64(*iters))
}

// validateFaultFlags rejects fault-injection targets that cannot take
// effect, instead of silently running a healthy cluster: -fail-rank and
// -slow-rank must name a rank inside [0, ranks) (or -1 to disable), and
// -slow-phi needs -slow-rank to say which rank's compute is degraded.
func validateFaultFlags(ranks, failRank, slowRank int, slowPhi time.Duration) error {
	if failRank < -1 || failRank >= ranks {
		return fmt.Errorf("-fail-rank %d outside the cluster [0, %d) (-1 disables)", failRank, ranks)
	}
	if slowRank < -1 || slowRank >= ranks {
		return fmt.Errorf("-slow-rank %d outside the cluster [0, %d) (-1 disables)", slowRank, ranks)
	}
	if slowPhi < 0 {
		return fmt.Errorf("-slow-phi %v is negative", slowPhi)
	}
	if slowPhi > 0 && slowRank < 0 {
		return fmt.Errorf("-slow-phi needs -slow-rank to name the degraded rank")
	}
	return nil
}

// openSink opens the -metrics-out destination: "-" streams to stdout (the
// caller keeps ownership), anything else creates/truncates a file the sink
// owns and closes.
func openSink(path string) (*obs.Sink, error) {
	if path == "-" {
		return obs.NewSink(os.Stdout), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return obs.NewFileSink(f), nil
}

// dialLoopbackMesh builds a fully-connected TCP mesh on 127.0.0.1: listen on
// an ephemeral port per rank to reserve the address table, then every rank
// dials every higher rank while accepting from lower ones (DialMesh's
// handshake), concurrently because each dial blocks on its peer.
func dialLoopbackMesh(ranks int) ([]transport.Conn, func(), error) {
	addrs := make([]string, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	conns := make([]transport.Conn, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conns[r], errs[r] = transport.DialMesh(r, addrs)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	cleanup := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	return conns, cleanup, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocd-cluster:", err)
	os.Exit(1)
}
