package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFaultFlags pins the fail-fast contract: a fault-injection
// target that cannot take effect is an error at startup, never a silently
// healthy run. The -slow-rank 5 on a 4-rank cluster case is the regression
// this guards — it used to be swallowed by a bounds check at the conn-wrap
// site, so the straggler drill measured nothing.
func TestValidateFaultFlags(t *testing.T) {
	cases := []struct {
		name     string
		ranks    int
		failRank int
		slowRank int
		slowPhi  time.Duration
		wantErr  string // substring; "" = must pass
	}{
		{"all disabled", 4, -1, -1, 0, ""},
		{"fail-rank in range", 4, 3, -1, 0, ""},
		{"slow-rank in range", 4, -1, 0, 0, ""},
		{"slow-phi with slow-rank", 4, -1, 1, time.Millisecond, ""},
		{"fail-rank == ranks", 4, 4, -1, 0, "-fail-rank 4 outside"},
		{"fail-rank far out", 4, 99, -1, 0, "-fail-rank 99 outside"},
		{"fail-rank below -1", 4, -2, -1, 0, "-fail-rank -2 outside"},
		{"slow-rank == ranks", 4, -1, 4, 0, "-slow-rank 4 outside"},
		{"slow-rank far out", 2, -1, 7, 0, "-slow-rank 7 outside"},
		{"slow-rank below -1", 4, -1, -3, 0, "-slow-rank -3 outside"},
		{"slow-phi without slow-rank", 4, -1, -1, time.Millisecond, "-slow-phi needs -slow-rank"},
		{"negative slow-phi", 4, -1, 1, -time.Millisecond, "is negative"},
		{"single rank valid", 1, 0, 0, time.Microsecond, ""},
		{"single rank out of range", 1, -1, 1, 0, "-slow-rank 1 outside"},
	}
	for _, tc := range cases {
		err := validateFaultFlags(tc.ranks, tc.failRank, tc.slowRank, tc.slowPhi)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted; want error containing %q", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
