// Socialnetwork: the motivating scenario of the paper's introduction — find
// overlapping friend circles in a social graph. This example builds a
// network of "users" whose planted circles overlap heavily (people belong to
// family, work and hobby groups simultaneously), trains the sampler, and
// reports per-user mixed memberships and bridging users.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

func main() {
	const n, k = 1200, 8
	g, truth, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k,
		MeanMembership: 1.5, // heavy overlap: many users in 2-3 circles
		SizeSkew:       0.6,
		TargetEdges:    14000,
		Background:     0.04,
		Seed:           2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d users, %d friendships\n", g.NumVertices(), g.NumEdges())
	overlap, err := truth.OverlapFraction(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted circles: %d, users in several circles: %.0f%%\n\n",
		truth.NumCommunities(), 100*overlap)

	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(k, 4)
	cfg.Alpha = 1.0 / k
	cfg.StepA = 0.05 // larger, slower-decaying step for fast mixing
	cfg.StepB = 4096
	s, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
		Threads: 4, NeighborCount: 40, MinibatchPairs: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < 4000; t++ {
		s.Step()
		if (t+1)%1000 == 0 {
			fmt.Printf("iteration %4d: held-out perplexity %.4f\n", t+1, s.EvalPerplexity())
		}
	}

	detected := metrics.FromState(s.State, 0)
	truthCover := metrics.NewCover(n, truth.Members)
	fmt.Printf("\ndetected %d circles; F1 vs planted %.3f, NMI %.3f\n",
		len(detected.Members), metrics.F1Score(detected, truthCover), metrics.NMI(detected, truthCover))

	// Rank users by membership entropy — the "bridges" between circles.
	type userSpread struct {
		user    int
		circles int
		top     []int
	}
	var spreads []userSpread
	for u := 0; u < n; u++ {
		row := s.State.PiRow(u)
		var active []int
		for c, p := range row {
			if float64(p) > 1.5/float64(k) {
				active = append(active, c)
			}
		}
		spreads = append(spreads, userSpread{user: u, circles: len(active), top: active})
	}
	sort.Slice(spreads, func(i, j int) bool { return spreads[i].circles > spreads[j].circles })

	fmt.Println("\nmost-bridging users (members of the most circles):")
	for _, sp := range spreads[:5] {
		fmt.Printf("  user %4d: %d circles %v\n", sp.user, sp.circles, sp.top)
	}

	// Circle size distribution.
	sizes := make([]int, 0, len(detected.Members))
	for _, m := range detected.Members {
		sizes = append(sizes, len(m))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("\ndetected circle sizes (largest first): %v\n", sizes)
}
