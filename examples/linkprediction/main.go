// Linkprediction: use the trained a-MMSB model as a link predictor — the
// held-out evaluation of the paper viewed through an ROC lens instead of
// perplexity. Demonstrates posterior-mean estimation over the chain tail
// (standard MCMC practice) and the calibration-free AUC metric.
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

func main() {
	const n, k = 1000, 8
	g, _, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k, MeanMembership: 1.25,
		SizeSkew: 0.5, TargetEdges: 12000, Background: 0.03, Seed: 123,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Hold out 10% of the links (plus matched non-links): these pairs are
	// invisible during training and scored afterwards.
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(124))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d edges; predicting %d held-out pairs (%d links)\n",
		train.NumEdges(), held.Len(), held.NumLinks())

	cfg := core.DefaultConfig(k, 125)
	cfg.Alpha = 1.0 / k
	cfg.StepA = 0.05
	cfg.StepB = 4096
	s, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
		Threads: 4, MinibatchPairs: 256, NeighborCount: 32,
	})
	if err != nil {
		log.Fatal(err)
	}

	pairs := make([][2]int32, held.Len())
	for i, e := range held.Pairs {
		pairs[i] = [2]int32{e.A, e.B}
	}

	fmt.Println("\ntraining (AUC of the raw chain state):")
	for round := 0; round < 4; round++ {
		s.Run(600)
		auc := metrics.LinkAUC(s.State, pairs, held.Linked, cfg.Delta)
		fmt.Printf("  iteration %4d: AUC %.3f\n", s.Iteration(), auc)
	}

	// Posterior mean over the chain tail: collect 20 samples 20 iterations
	// apart and average them.
	acc := core.NewPosteriorMean(train.NumVertices(), k)
	for i := 0; i < 20; i++ {
		s.Run(20)
		acc.Add(s.State)
	}
	rawAUC := metrics.LinkAUC(s.State, pairs, held.Linked, cfg.Delta)
	meanAUC := metrics.LinkAUC(acc.State(), pairs, held.Linked, cfg.Delta)
	fmt.Printf("\nfinal single-sample AUC:   %.3f\n", rawAUC)
	fmt.Printf("posterior-mean AUC (T=20): %.3f\n", meanAUC)

	// Show the top predictions among held-out non-edges.
	type scored struct {
		a, b int32
		p    float64
	}
	var best scored
	st := acc.State()
	for i, pr := range pairs {
		if held.Linked[i] {
			continue
		}
		p := core.EdgeProbability(st.PiRow(int(pr[0])), st.PiRow(int(pr[1])), st.Beta, cfg.Delta, true)
		if p > best.p {
			best = scored{pr[0], pr[1], p}
		}
	}
	fmt.Printf("\nstrongest predicted missing link: (%d, %d) with p = %.3f\n", best.a, best.b, best.p)
	fmt.Println("(in a recommender, pairs like this would be suggested as new connections)")
}
