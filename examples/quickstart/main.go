// Quickstart: generate a graph with planted overlapping communities, train
// the SG-MCMC a-MMSB sampler on it for a few hundred iterations, and check
// what it learned — held-out perplexity going down and the planted
// communities coming back out.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

func main() {
	// 1. A synthetic social network: 600 people, 6 interest groups, some
	// people in more than one group. (SG-MCMC needs thousands of iterations
	// per vertex-update to mix — the paper trains for hours on its cluster —
	// so the quickstart keeps the graph small enough to converge in seconds.)
	const n, k = 600, 6
	g, truth, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k, MeanMembership: 1.2,
		SizeSkew: 0.5, TargetEdges: 6000, Background: 0.03, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	overlap, err := truth.OverlapFraction(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated graph: %d vertices, %d edges, %.0f%% of people in >1 community\n",
		g.NumVertices(), g.NumEdges(), 100*overlap)

	// 2. Hold out a test set for perplexity (Eqn 7 of the paper).
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(8))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train with the multi-threaded single-node sampler.
	cfg := core.DefaultConfig(k, 9)
	cfg.Alpha = 1.0 / k // standard choice: concentration 1/K
	cfg.StepA = 0.05    // larger, slower-decaying step for fast mixing
	cfg.StepB = 4096
	sampler, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
		MinibatchPairs: 128,
		NeighborCount:  32,
		Threads:        4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntraining:")
	start := time.Now()
	for t := 0; t < 3000; t++ {
		sampler.Step()
		if (t+1)%500 == 0 {
			fmt.Printf("  iteration %4d  perplexity %.4f  (%.1fs)\n",
				t+1, sampler.EvalPerplexity(), time.Since(start).Seconds())
		}
	}

	// 4. Threshold π into overlapping communities and score the recovery.
	detected := metrics.FromState(sampler.State, 0)
	truthCover := metrics.NewCover(n, truth.Members)
	fmt.Printf("\nrecovered %d communities\n", len(detected.Members))
	fmt.Printf("F1 against planted ground truth:  %.3f\n", metrics.F1Score(detected, truthCover))
	fmt.Printf("NMI against planted ground truth: %.3f\n", metrics.NMI(detected, truthCover))

	// 5. Peek at one vertex's mixed membership.
	v := 0
	fmt.Printf("\nπ[%d] (membership distribution of vertex %d):\n", v, v)
	for c, p := range sampler.State.PiRow(v) {
		if p > 0.05 {
			fmt.Printf("  community %d: %.2f\n", c, p)
		}
	}
}
