// Clustersim: run the full distributed engine — master-worker minibatch
// deployment, DKV-resident π, chunk-ordered θ reduction — on simulated
// clusters of increasing size, and print the per-phase breakdown that
// mirrors the paper's Figure 1 and Table III.
//
//	go run ./examples/clustersim
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

func main() {
	// A mid-sized planted graph; large enough that update_phi dominates.
	g, _, err := gen.Planted(gen.DefaultPlanted(6000, 24, 60000, 11))
	if err != nil {
		log.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(12))
	if err != nil {
		log.Fatal(err)
	}
	const k, iters = 64, 80
	cfg := core.DefaultConfig(k, 13)
	cfg.Alpha = 1.0 / k

	fmt.Printf("strong scaling on a simulated cluster (N=%d, |E|=%d, K=%d, %d iterations)\n\n",
		train.NumVertices(), train.NumEdges(), k, iters)
	fmt.Printf("%6s %10s %12s %12s %12s %12s\n",
		"ranks", "total (s)", "update_phi", "update_pi", "update_beta", "remote frac")

	var base float64
	for _, ranks := range []int{1, 2, 4, 8} {
		res, err := dist.Run(cfg, train, held, dist.Options{
			Ranks: ranks, Threads: 2, Iterations: iters, Pipeline: true,
			MinibatchPairs: 1024, NeighborCount: 32,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := res.Elapsed.Seconds()
		if ranks == 1 {
			base = total
		}
		fmt.Printf("%6d %10.2f %12.2f %12.2f %12.2f %11.0f%%   (speedup %.2fx)\n",
			ranks, total,
			res.Phases.Total(dist.PhaseUpdatePhi).Seconds(),
			res.Phases.Total(dist.PhaseUpdatePi).Seconds(),
			res.Phases.Total(dist.PhaseUpdateBetaTheta).Seconds(),
			100*res.RemoteFrac, base/total)
	}

	fmt.Println("\nnote: all ranks share this machine's cores, so wall-clock speedup is")
	fmt.Println("bounded by the physical core count; the remote fraction shows the DKV")
	fmt.Println("traffic growing as (C-1)/C exactly as in the paper's Section IV-C.")
}
