// Convergence: the Figure 6 experiment in miniature — train on scaled
// stand-ins of the paper's SNAP datasets and watch the held-out perplexity
// converge, using the distributed engine with pipelining enabled.
//
//	go run ./examples/convergence            # two quick presets
//	go run ./examples/convergence -all       # every Table II preset (slow)
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	all := flag.Bool("all", false, "run every Table II preset")
	iters := flag.Int("iters", 0, "iterations per dataset (0 = auto-size)")
	flag.Parse()

	names := []string{"com-youtube-sim", "com-amazon-sim"}
	if *all {
		names = names[:0]
		for _, p := range gen.Presets() {
			names = append(names, p.Name)
		}
	}
	for _, name := range names {
		out, err := experiments.Fig6(experiments.Fig6Config{
			Preset: name, Ranks: 2, Iterations: *iters,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
